"""Delay propagation model (paper Sec. 3.3.2).

Mirrors a timing engine's levelized propagation: node state flows through
the DAG level by level, alternating net propagation and cell propagation
layers.  Every node is updated exactly once (asynchronously, in level
order), so a single pass covers arbitrarily deep logic — this is the
paper's answer to the receptive-field problem of conventional GNNs.

Two kinds of state propagate together, exactly as in an STA engine:

* a bounded context vector ``h_prop`` (tanh-limited; the learned
  analogue of slew/load bookkeeping) — unbounded recurrent states would
  diverge over the up-to-hundreds of levels a design has;
* an unbounded 4-channel **arrival accumulator**: every net or cell arc
  adds a softplus-positive learned increment to its source's arrival
  (delays are non-negative, so arrivals are monotone along paths), and
  multi-arc fanin is fused per channel by a learned max/min gate (late
  corners are max-reduced in real STA, early corners min-reduced).

Slew is *not* cumulative — it is a local function of driver strength and
load — so it is predicted from the propagated context by a head rather
than accumulated.  The paper describes the whole construction as "a
timing engine learned from data with neural networks as function
approximators"; the additive arrival structure is what keeps the
effective receptive field unbounded while gradients stay conditioned
(every increment sees the loss directly, like a residual network).

Cell propagation embeds a learned **NLDM LUT interpolation** module: two
MLPs produce interpolation coefficients for the slew axis and the load
axis of each 7x7 look-up table; their Kronecker (outer) product yields a
7x7 coefficient matrix which is dotted with the LUT values — a learnable
generalisation of the bilinear interpolation a real STA engine performs.
The cell-arc arrival increment *is* the model's cell delay prediction,
tying the auxiliary task of Eq. (5) to the quantity used inside
propagation.
"""

from __future__ import annotations

import weakref

import numpy as np

from .. import nn
from ..nn.arena import NULL_ARENA, arena_enabled
from .config import ModelConfig
from .net_embedding import num_reduction_channels, reduction_channels

__all__ = ["LUTInterpolation", "LUTFlattenMLP", "DelayPropagation"]


class LUTInterpolation(nn.Module):
    """Learned interpolation over the 8 stacked LUTs of a cell arc."""

    def __init__(self, cfg, rng):
        super().__init__()
        q = cfg.lut_query_dim
        mlp = dict(hidden=cfg.lut_mlp_hidden,
                   num_hidden_layers=cfg.lut_mlp_layers)
        self.query = nn.MLP(cfg.prop_dim + cfg.embedding_dim, q, rng, **mlp)
        self.coeff_x = nn.MLP(q + 7, 7, rng, **mlp)
        self.coeff_y = nn.MLP(q + 7, 7, rng, **mlp)

    def forward(self, h_src_prop, h_dst_emb, valid, indices, values,
                cache=None):
        """Per-edge LUT outputs.

        ``valid`` (E, 8), ``indices`` (E, 112), ``values`` (E, 392);
        returns (E, 8) — one interpolated value per LUT.  The query sees
        the source context (which carries the input-slew information a
        real NLDM lookup is indexed by) and the destination embedding
        (which carries the load statistics).  ``cache`` is an optional
        :class:`repro.graphdata.hetero.LevelCompute` holding the
        per-level query expansion and index/value reshapes precomputed,
        so full-batch training does not rebuild them every forward.
        """
        e = len(valid)
        q = self.query(nn.concat([h_src_prop, h_dst_emb]),
                       activation="tanh")
        if cache is None:
            # Expand the query to one row per (edge, table).
            rep = np.repeat(np.arange(e), 8)
            rep_sched = None
            idx = np.asarray(indices).reshape(e * 8, 14)
            idx_x, idx_y = idx[:, :7], idx[:, 7:]
            vals = np.asarray(values).reshape(e * 8, 49)
        else:
            rep, rep_sched = cache.lut_rep, cache.lut_rep_sched
            idx_x, idx_y = cache.lut_idx_x, cache.lut_idx_y
            vals = cache.lut_values
        q8 = nn.gather_rows(q, rep, schedule=rep_sched)
        ax = self.coeff_x(nn.concat([q8, nn.Tensor(idx_x)]))
        ay = self.coeff_y(nn.concat([q8, nn.Tensor(idx_y)]))
        # Kronecker combination of the two axis-coefficient vectors,
        # dotted with the LUT value matrix.
        return nn.lut_kron_combine(ax, ay, vals, np.asarray(valid))


class LUTFlattenMLP(nn.Module):
    """Ablation alternative to :class:`LUTInterpolation`: a plain MLP on
    the flattened 512-dim LUT features.  No interpolation structure —
    this is what a generic heterogeneous GNN would do with the cell
    library, and what the Kronecker module is benchmarked against."""

    def __init__(self, cfg, rng):
        super().__init__()
        in_dim = cfg.prop_dim + cfg.embedding_dim + 8 + 112 + 392
        self.net = nn.MLP(in_dim, 8, rng, hidden=cfg.lut_mlp_hidden,
                          num_hidden_layers=cfg.lut_mlp_layers)

    def forward(self, h_src_prop, h_dst_emb, valid, indices, values,
                cache=None):
        out = self.net(nn.concat([
            h_src_prop, h_dst_emb, nn.Tensor(np.asarray(valid)),
            nn.Tensor(np.asarray(indices)), nn.Tensor(np.asarray(values))]))
        return out * nn.Tensor(np.asarray(valid))


class DelayPropagation(nn.Module):
    """Levelized arrival-time / slew propagation with auxiliary heads."""

    def __init__(self, cfg=None, rng=None):
        super().__init__()
        cfg = cfg or ModelConfig.paper()
        rng = rng or np.random.default_rng(cfg.seed + 1)
        self.cfg = cfg
        d_emb, d_prop = cfg.embedding_dim, cfg.prop_dim
        mlp = dict(hidden=cfg.mlp_hidden, num_hidden_layers=cfg.mlp_layers)
        # Sources (primary inputs, register Q pins) initialise from the
        # net embedding, which carries the load statistics the CK->Q
        # launch delay depends on.
        self.source_init = nn.MLP(d_emb, d_prop, rng, **mlp)
        self.source_at = nn.MLP(d_emb, 4, rng, **mlp)
        # Net propagation layer: [prop(driver), emb(sink), edge feats].
        self.net_prop = nn.MLP(d_prop + d_emb + cfg.net_edge_feat_dim,
                               d_prop, rng, **mlp)
        self.net_inc = nn.MLP(d_prop + d_emb + cfg.net_edge_feat_dim,
                              4, rng, **mlp)
        # Cell propagation: learned LUT lookup + message + two reduction
        # channels (sum, max), like the cell-arc max in an STA engine.
        self.reduction = cfg.reduction
        n_ch = num_reduction_channels(cfg.reduction)
        if cfg.lut_mode == "kron":
            self.lut = LUTInterpolation(cfg, rng)
        elif cfg.lut_mode == "mlp":
            self.lut = LUTFlattenMLP(cfg, rng)
        else:
            raise ValueError(f"unknown lut_mode {cfg.lut_mode!r}")
        self.cell_msg = nn.MLP(d_prop + d_emb + 8, d_prop, rng, **mlp)
        self.cell_inc = nn.MLP(d_prop + 8, 4, rng, **mlp)
        self.cell_combine = nn.MLP(d_emb + n_ch * d_prop, d_prop, rng, **mlp)
        # Per-channel gate mixing max- and min-aggregation of fanin
        # arrival candidates.
        self.agg_gate = nn.Tensor(np.zeros(4), requires_grad=True)
        # Output heads: signed arrival refinement and positive slew.
        self.refine_at = nn.MLP(d_emb + d_prop, 4, rng, **mlp)
        self.slew_head = nn.MLP(d_emb + d_prop, 4, rng, **mlp)

    def forward(self, graph, h_emb):
        """Propagate through ``graph.levels``.

        Returns (atslew (N, 8), cell_delay (E_cell, 4) aligned with
        ``edge_order``, edge_order).

        Under the fused kernel backend the level loop runs through
        :func:`_fused_propagate` — the whole loop as one hand-written
        multi-output tape node over shared state buffers; the composed
        per-op path below is the reference (and the fallback for the
        ``mlp`` LUT ablation).
        """
        if nn.kernels.is_fused() and self.cfg.lut_mode == "kron":
            h_prop, at, cell_delay, edge_order = _fused_propagate(
                self, graph, h_emb)
        else:
            h_prop, at, cell_delay, edge_order = self._propagate(
                graph, h_emb)
        state = nn.concat([h_emb, h_prop])
        arrival = at + self.refine_at(state)
        slew = self.slew_head(state, activation="softplus")
        atslew = nn.concat([arrival, slew])
        return atslew, cell_delay, edge_order

    def _propagate(self, graph, h_emb):
        """Composed per-op level loop; returns (h_prop, at, cell_delay,
        edge_order)."""
        n = graph.num_nodes
        sched = graph.compute_schedule()
        h_prop = nn.Tensor(np.zeros((n, self.cfg.prop_dim)))
        at = nn.Tensor(np.zeros((n, 4)))
        sources = sched.sources
        if len(sources):
            h_emb_src = nn.gather_rows(h_emb, sources)
            h_prop = nn.scatter_rows(
                h_prop, sources,
                self.source_init(h_emb_src, activation="tanh"))
            at = nn.scatter_rows(
                at, sources,
                self.source_at(h_emb_src, activation="softplus"))

        delay_chunks, delay_orders = [], []
        for lv in sched.levels:
            idx_parts, ctx_parts, at_parts = [], [], []
            if len(lv.net_eids):
                joint = nn.gather_concat(
                    [h_prop, h_emb, lv.net_features],
                    [lv.net_src, lv.net_dst, None],
                    schedules=[lv.net_src_sched, lv.net_dst_sched, None])
                # Every net sink has exactly one driver, so the edge list
                # itself indexes the destination nodes uniquely.
                idx_parts.append(lv.net_dst)
                ctx_parts.append(self.net_prop(joint, activation="tanh"))
                at_parts.append(nn.gather_add(
                    at, lv.net_src,
                    self.net_inc(joint, activation="softplus"),
                    schedule=lv.net_src_sched))
            if len(lv.cell_eids):
                h_s = nn.gather_rows(h_prop, lv.cell_src,
                                     schedule=lv.cell_src_sched)
                h_d = nn.gather_rows(h_emb, lv.cell_dst_edges,
                                     schedule=lv.cell_dst_sched)
                lut_out = self.lut(h_s, h_d, lv.cell_valid,
                                   lv.cell_indices, lv.cell_values,
                                   cache=lv)
                msg = self.cell_msg(nn.concat([h_s, h_d, lut_out]),
                                    activation="tanh")
                inc = self.cell_inc(nn.concat([msg, lut_out]),
                                    activation="softplus")
                # The arrival increment is the cell delay itself (Eq. 5).
                delay_chunks.append(inc)
                delay_orders.append(lv.cell_eids)
                cand = nn.gather_add(at, lv.cell_src, inc,
                                     schedule=lv.cell_src_sched)
                n_dst = len(lv.cell_dst)
                # One-pass fanin reduction: late corners max-reduced,
                # early corners min-reduced, mixed by the learned gate.
                at_new = nn.segment_minmax_gate(
                    cand, lv.cell_seg, n_dst, self.agg_gate,
                    schedule=lv.cell_seg_sched)
                aggs = reduction_channels(msg, lv.cell_seg, n_dst,
                                          self.reduction,
                                          schedule=lv.cell_seg_sched)
                h_d_u = nn.gather_rows(h_emb, lv.cell_dst)
                ctx = self.cell_combine(nn.concat([h_d_u] + aggs),
                                        activation="tanh")
                idx_parts.append(lv.cell_dst)
                ctx_parts.append(ctx)
                at_parts.append(at_new)
            if idx_parts:
                index = np.concatenate(idx_parts)
                ctx_vals = (ctx_parts[0] if len(ctx_parts) == 1
                            else nn.concat(ctx_parts, axis=0))
                at_vals = (at_parts[0] if len(at_parts) == 1
                           else nn.concat(at_parts, axis=0))
                h_prop = nn.scatter_rows(h_prop, index, ctx_vals)
                at = nn.scatter_rows(at, index, at_vals)

        if delay_chunks:
            cell_delay = (delay_chunks[0] if len(delay_chunks) == 1
                          else nn.concat(delay_chunks, axis=0))
            edge_order = np.concatenate(delay_orders)
        else:
            cell_delay = nn.Tensor(np.zeros((0, 4)))
            edge_order = np.zeros(0, dtype=np.int64)
        return h_prop, at, cell_delay, edge_order


def _release_saved(alloc, saved):
    """Return one MLP chain's saved activations to the arena.

    ``saved`` is the ``(inputs, outputs, out)`` tuple of
    :func:`repro.nn.kernels.mlp_chain_forward_raw`.  Only ``outputs``
    (plus the distinct ``out_act`` copy) were allocated by the chain —
    ``inputs[0]`` is the caller's buffer and ``inputs[k>0]`` alias
    ``outputs[k-1]``, so releasing those too would double-release.
    """
    if saved is None:
        return
    _inputs, outputs, out = saved
    for buf in outputs:
        alloc.release(buf)
    if not outputs or out is not outputs[-1]:
        alloc.release(out)


def _fused_propagate(model, graph, h_emb):
    """Level-fused propagation: the whole loop as ONE fused tape node.

    The composed path creates tens of tape nodes per topological level
    (gathers, concats, MLP chains, segment reductions, functional
    scatters), and deep designs have hundreds of levels — the tape
    bookkeeping (node allocation, gradient buffer copies, full-width
    scatter masks) ends up rivalling the arithmetic.  This kernel
    hand-writes the forward and backward sweeps over two shared state
    buffers (``h_prop`` and the arrival accumulator), exploiting the
    schedule's write-once invariant — every node is written at exactly
    one level and read only at later levels — so the forward updates
    one ``(N, d)`` buffer in place instead of copying it per level, and
    the backward keeps ONE gradient buffer per state, extracting each
    level's written rows (then zeroing them) and scatter-adding gather
    gradients while sweeping levels in reverse.

    All tape intermediates come from the graph schedule's
    :class:`~repro.nn.arena.TapeArena` when one is free (the forward
    leases it for the episode; the backward releases buffers level by
    level as their last read passes and ends the lease), so steady-state
    training reruns the whole pass with zero fresh allocations.  Buffers
    that escape the mega-op — the ``h_prop``/arrival outputs, the cell
    delays, parameter gradients and the ``h_emb`` gradient — are always
    freshly allocated.  Everything runs in ``h_emb``'s dtype (the
    :func:`repro.nn.dtype.active_dtype` policy).

    Numerically equivalent to the composed graph within the
    fused==naive contract (only floating-point summation order
    differs); the full-model differential test pins the backends
    together.  Used for the paper's ``kron`` LUT mode; other
    configurations fall back to the composed path.

    Returns ``(h_prop, at, cell_delay, edge_order)`` where the first
    three are tensors produced by glue nodes around one shared backward
    closure (the closure fires once all output gradients are in).
    """
    kernels = nn.kernels
    cfg = model.cfg
    he = h_emb.data
    dtype = he.dtype
    sched = graph.compute_schedule(dtype=dtype)
    n = graph.num_nodes
    d_prop, d_emb, q_dim = cfg.prop_dim, cfg.embedding_dim, cfg.lut_query_dim
    reduction = model.reduction
    save = nn.is_grad_enabled()

    plan = token = None
    if arena_enabled():
        plan = sched.arena("train" if save else "infer")
        token = plan.begin()
    alloc = plan if token is not None else NULL_ARENA

    st_init = model.source_init.fused_steps()
    st_at0 = model.source_at.fused_steps()
    st_net_prop = model.net_prop.fused_steps()
    st_net_inc = model.net_inc.fused_steps()
    st_query = model.lut.query.fused_steps()
    st_cx = model.lut.coeff_x.fused_steps()
    st_cy = model.lut.coeff_y.fused_steps()
    st_msg = model.cell_msg.fused_steps()
    st_cinc = model.cell_inc.fused_steps()
    st_comb = model.cell_combine.fused_steps()

    mlp_fwd = kernels.mlp_chain_forward_raw
    mlp_bwd = kernels.mlp_chain_backward_raw
    gcat = kernels.gather_concat_raw
    extrema = kernels.segment_extrema_raw
    scatter_add = kernels.scatter_add_rows

    gate = 1.0 / (1.0 + np.exp(-np.clip(model.agg_gate.data, -60, 60)))
    gate_c = 1.0 - gate

    # Outputs escape the mega-op as tensor data: always fresh.
    hp = np.zeros((n, d_prop), dtype=dtype)
    atb = np.zeros((n, 4), dtype=dtype)
    n_cell = sum(len(lv.cell_eids) for lv in sched.levels)
    cell_delay = np.zeros((n_cell, 4), dtype=dtype)

    sources = sched.sources
    s_init = s_at0 = None
    src_bufs = []
    if len(sources):
        he_src = alloc.take((len(sources), he.shape[1]), dtype)
        he.take(sources, axis=0, out=he_src)
        init_out, s_init = mlp_fwd(he_src, st_init, out_act="tanh",
                                   save=save, alloc=alloc)
        at0_out, s_at0 = mlp_fwd(he_src, st_at0, out_act="softplus",
                                 save=save, alloc=alloc)
        hp[sources] = init_out
        atb[sources] = at0_out
        if save:
            src_bufs.append(he_src)
        else:
            alloc.release_all((he_src, init_out, at0_out))

    recs = []
    delay_orders = []
    chunk_off = 0
    for lv in sched.levels:
        rec = {}
        bufs = []            # arena buffers whose last read is this
        # level's backward sweep (released there, or now under no_grad)
        net_ctx = net_at = cell_ctx = cell_at = None
        if len(lv.net_eids):
            joint = gcat([hp, he, lv.net_features],
                         [lv.net_src, lv.net_dst, None], alloc=alloc)
            bufs.append(joint)
            net_ctx, rec["s_nctx"] = mlp_fwd(joint, st_net_prop,
                                             out_act="tanh", save=save,
                                             alloc=alloc)
            inc_net, rec["s_ninc"] = mlp_fwd(joint, st_net_inc,
                                             out_act="softplus", save=save,
                                             alloc=alloc)
            net_at = alloc.take((len(lv.net_eids), 4), dtype)
            atb.take(lv.net_src, axis=0, out=net_at)
            net_at += inc_net
            if not save:
                bufs.extend((net_ctx, inc_net))
        if len(lv.cell_eids):
            e = len(lv.cell_eids)
            q_in = gcat([hp, he], [lv.cell_src, lv.cell_dst_edges],
                        alloc=alloc)
            bufs.append(q_in)
            q, rec["s_q"] = mlp_fwd(q_in, st_query, out_act="tanh",
                                    save=save, alloc=alloc)
            # lut_rep is np.repeat(arange(e), 8), so the query expansion
            # is a plain row repeat (and its gradient a reshape-sum).
            q8 = alloc.take((e * 8, q_dim), dtype)
            q8.reshape(e, 8, q_dim)[...] = q[:, None, :]
            if not save:
                alloc.release(q)
            ax_in = gcat([q8, lv.lut_idx_x], [None, None], alloc=alloc)
            ay_in = gcat([q8, lv.lut_idx_y], [None, None], alloc=alloc)
            alloc.release(q8)
            bufs.extend((ax_in, ay_in))
            ax, rec["s_ax"] = mlp_fwd(ax_in, st_cx, save=save, alloc=alloc)
            ay, rec["s_ay"] = mlp_fwd(ay_in, st_cy, save=save, alloc=alloc)
            v3 = lv.lut_values.reshape(-1, 7, 7)
            vy = alloc.take((e * 8, 7), dtype)
            np.matmul(v3, ay[:, :, None], out=vy[:, :, None])
            if save:
                rec["vy"] = vy
            bufs.append(vy)
            dot = alloc.take((e * 8,), dtype)
            np.einsum("ij,ij->i", ax, vy, out=dot)
            lut_out = alloc.take((e, 8), dtype)
            np.multiply(dot.reshape(e, 8), lv.cell_valid, out=lut_out)
            alloc.release(dot)
            if not save:
                alloc.release_all((ax, ay))
            msg_in = gcat([q_in, lut_out], [None, None], alloc=alloc)
            bufs.append(msg_in)
            msg, rec["s_msg"] = mlp_fwd(msg_in, st_msg, out_act="tanh",
                                        save=save, alloc=alloc)
            cinc_in = gcat([msg, lut_out], [None, None], alloc=alloc)
            alloc.release(lut_out)
            bufs.append(cinc_in)
            inc, rec["s_cinc"] = mlp_fwd(cinc_in, st_cinc,
                                         out_act="softplus", save=save,
                                         alloc=alloc)
            cell_delay[chunk_off:chunk_off + e] = inc
            delay_orders.append(lv.cell_eids)
            rec["chunk"] = (chunk_off, chunk_off + e)
            chunk_off += e
            cand = alloc.take((e, 4), dtype)
            atb.take(lv.cell_src, axis=0, out=cand)
            cand += inc
            if not save:
                alloc.release(inc)
            bufs.append(cand)
            seg = lv.cell_seg_sched
            n_dst = len(lv.cell_dst)
            out_max = extrema(cand, seg, n_dst, np.maximum, alloc=alloc)
            out_min = extrema(cand, seg, n_dst, np.minimum, alloc=alloc)
            if save:
                rec["cand"] = cand
                rec["out_max"] = out_max
                rec["out_min"] = out_min
            bufs.extend((out_max, out_min))
            cell_at = alloc.take((n_dst, 4), dtype)
            np.multiply(out_max, gate, out=cell_at)
            t_min = alloc.take((n_dst, 4), dtype)
            np.multiply(out_min, gate_c, out=t_min)
            cell_at += t_min
            alloc.release(t_min)
            aggs = []
            if reduction in ("sum", "both"):
                agg = alloc.take((n_dst, d_prop), dtype, zero=True)
                scatter_add(agg, lv.cell_seg, msg, schedule=seg,
                            alloc=alloc)
                aggs.append(agg)
            if reduction in ("max", "both"):
                agg_max = extrema(msg, seg, n_dst, np.maximum, alloc=alloc)
                aggs.append(agg_max)
                if save:
                    rec["agg_max"] = agg_max
                bufs.append(agg_max)
            if not save:
                alloc.release(msg)
            comb_in = gcat([he] + aggs, [lv.cell_dst] + [None] * len(aggs),
                           alloc=alloc)
            if reduction in ("sum", "both"):
                alloc.release(aggs[0])
            bufs.append(comb_in)
            cell_ctx, rec["s_comb"] = mlp_fwd(comb_in, st_comb,
                                              out_act="tanh", save=save,
                                              alloc=alloc)
            if not save:
                bufs.append(cell_ctx)
        # Writes after both branches' reads: level-L gathers always see
        # the pre-level state, exactly like the composed scatter_rows.
        if net_ctx is not None:
            hp[lv.net_dst] = net_ctx
            atb[lv.net_dst] = net_at
            alloc.release(net_at)
        if cell_ctx is not None:
            hp[lv.cell_dst] = cell_ctx
            atb[lv.cell_dst] = cell_at
            alloc.release(cell_at)
        if save:
            rec["bufs"] = bufs
        else:
            alloc.release_all(bufs)
        recs.append(rec)

    if delay_orders:
        edge_order = np.concatenate(delay_orders)
    else:
        edge_order = np.zeros(0, dtype=np.int64)

    if not save and token is not None:
        plan.end(token)

    # -- backward: one closure consuming all three output gradients ----------
    holder = {}

    def _tie_grad(values, extrema_out, g_rows, seg, alloc):
        """Tie-splitting extrema gradient: ``mask * (g / counts)[ids]``.

        Returns an arena-owned ``values``-shaped buffer; ``g_rows`` is a
        per-segment gradient (read-only).
        """
        gath = alloc.take(values.shape, values.dtype)
        extrema_out.take(seg.ids, axis=0, out=gath)
        mask = alloc.take(values.shape, values.dtype)
        np.equal(values, gath, out=mask)      # bool -> float is safe
        counts = alloc.take(extrema_out.shape, extrema_out.dtype,
                            zero=True)
        scatter_add(counts, seg.ids, mask, schedule=seg, alloc=alloc)
        np.maximum(counts, 1.0, out=counts)
        np.divide(g_rows, counts, out=counts)
        counts.take(seg.ids, axis=0, out=gath)
        mask *= gath
        alloc.release_all((gath, counts))
        return mask

    def mega_backward(_g):
        g_cd = holder.pop("cd", None)
        g_hp_seed = holder.pop("hp", None)
        g_at_seed = holder.pop("at", None)
        ghp = alloc.take((n, d_prop), dtype, zero=g_hp_seed is None)
        if g_hp_seed is not None:
            np.copyto(ghp, g_hp_seed)
        gat = alloc.take((n, 4), dtype, zero=g_at_seed is None)
        if g_at_seed is not None:
            np.copyto(gat, g_at_seed)
        # h_emb's gradient and the gate gradient escape: always fresh.
        ghe = np.zeros_like(he)
        g_gate = np.zeros_like(model.agg_gate.data)
        for lv, rec in zip(reversed(sched.levels), reversed(recs)):
            has_net = "s_nctx" in rec
            has_cell = "s_q" in rec
            # Extract the gradients of this level's written rows, then
            # clear them: the rows' pre-write values are the initial
            # zeros, whose gradient is discarded (scatter_rows' mask).
            if has_net:
                g_nctx = alloc.take((len(lv.net_eids), d_prop), dtype)
                ghp.take(lv.net_dst, axis=0, out=g_nctx)
                g_nat = alloc.take((len(lv.net_eids), 4), dtype)
                gat.take(lv.net_dst, axis=0, out=g_nat)
                ghp[lv.net_dst] = 0.0
                gat[lv.net_dst] = 0.0
            if has_cell:
                n_dst = len(lv.cell_dst)
                g_cctx = alloc.take((n_dst, d_prop), dtype)
                ghp.take(lv.cell_dst, axis=0, out=g_cctx)
                g_cat = alloc.take((n_dst, 4), dtype)
                gat.take(lv.cell_dst, axis=0, out=g_cat)
                ghp[lv.cell_dst] = 0.0
                gat[lv.cell_dst] = 0.0
            if has_cell:
                seg = lv.cell_seg_sched
                e = len(lv.cell_eids)
                msg = rec["s_msg"][2]
                # combine MLP <- [h_emb(dst) | reduction channels].
                g_comb = mlp_bwd(g_cctx, st_comb, rec["s_comb"],
                                 out_act="tanh", alloc=alloc)
                alloc.release(g_cctx)
                ghe[lv.cell_dst] += g_comb[:, :d_emb]
                col = d_emb
                g_msg = None
                if reduction in ("sum", "both"):
                    g_msg = alloc.take((e, d_prop), dtype)
                    g_comb[:, col:col + d_prop].take(lv.cell_seg,
                            axis=0, out=g_msg)
                    col += d_prop
                if reduction in ("max", "both"):
                    part = _tie_grad(msg, rec["agg_max"],
                                     g_comb[:, col:col + d_prop], seg,
                                     alloc)
                    if g_msg is None:
                        g_msg = part
                    else:
                        g_msg += part
                        alloc.release(part)
                    col += d_prop
                alloc.release(g_comb)
                # Late/early min-max gate (tie-splitting, as naive).
                cand, out_max, out_min = (rec["cand"], rec["out_max"],
                                          rec["out_min"])
                t = alloc.take(out_max.shape, dtype)
                np.subtract(out_max, out_min, out=t)
                t *= g_cat
                g_gate += t.sum(axis=0)
                np.multiply(g_cat, gate, out=t)
                g_cand = _tie_grad(cand, out_max, t, seg, alloc)
                np.multiply(g_cat, gate_c, out=t)
                part = _tie_grad(cand, out_min, t, seg, alloc)
                g_cand += part
                alloc.release_all((part, t, g_cat))
                scatter_add(gat, lv.cell_src, g_cand,
                            schedule=lv.cell_src_sched, alloc=alloc)
                if g_cd is not None:
                    lo, hi = rec["chunk"]
                    g_cand += g_cd[lo:hi]
                # cell_inc MLP <- [msg | lut_out].
                g_ci = mlp_bwd(g_cand, st_cinc, rec["s_cinc"],
                               out_act="softplus", alloc=alloc)
                alloc.release(g_cand)
                g_msg += g_ci[:, :d_prop]
                # cell_msg MLP <- [h_s | h_d | lut_out].
                g_mi = mlp_bwd(g_msg, st_msg, rec["s_msg"], out_act="tanh",
                               alloc=alloc)
                alloc.release(g_msg)
                g_lut = alloc.take((e, 8), dtype)
                np.add(g_ci[:, d_prop:], g_mi[:, d_prop + d_emb:],
                       out=g_lut)
                alloc.release(g_ci)
                # LUT interpolation: out = ax . (V @ ay) per row.
                g_lut *= lv.cell_valid
                gv = g_lut.reshape(-1, 1)
                ax = rec["s_ax"][2]
                v3 = lv.lut_values.reshape(-1, 7, 7)
                g_ax = alloc.take((e * 8, 7), dtype)
                np.multiply(rec["vy"], gv, out=g_ax)
                g_ay = alloc.take((e * 8, 7), dtype)
                np.matmul(ax[:, None, :], v3, out=g_ay[:, None, :])
                g_ay *= gv
                alloc.release(g_lut)
                g_axi = mlp_bwd(g_ax, st_cx, rec["s_ax"], alloc=alloc)
                g_ayi = mlp_bwd(g_ay, st_cy, rec["s_ay"], alloc=alloc)
                alloc.release_all((g_ax, g_ay))
                g_q8 = alloc.take((e * 8, q_dim), dtype)
                np.add(g_axi[:, :q_dim], g_ayi[:, :q_dim], out=g_q8)
                alloc.release_all((g_axi, g_ayi))
                g_q = alloc.take((e, q_dim), dtype)
                np.add.reduce(g_q8.reshape(e, 8, q_dim), axis=1, out=g_q)
                alloc.release(g_q8)
                g_qi = mlp_bwd(g_q, st_query, rec["s_q"], out_act="tanh",
                               alloc=alloc)
                alloc.release(g_q)
                # q_in and msg_in share the [h_s | h_d] prefix.
                g_hs = alloc.take((e, d_prop), dtype)
                np.add(g_qi[:, :d_prop], g_mi[:, :d_prop], out=g_hs)
                g_hd = alloc.take((e, d_emb), dtype)
                np.add(g_qi[:, d_prop:], g_mi[:, d_prop:d_prop + d_emb],
                       out=g_hd)
                alloc.release_all((g_qi, g_mi))
                scatter_add(ghp, lv.cell_src, g_hs,
                            schedule=lv.cell_src_sched, alloc=alloc)
                scatter_add(ghe, lv.cell_dst_edges, g_hd,
                            schedule=lv.cell_dst_sched, alloc=alloc)
                alloc.release_all((g_hs, g_hd))
                for key in ("s_q", "s_ax", "s_ay", "s_msg", "s_cinc",
                            "s_comb"):
                    _release_saved(alloc, rec[key])
            if has_net:
                scatter_add(gat, lv.net_src, g_nat,
                            schedule=lv.net_src_sched, alloc=alloc)
                g_joint = mlp_bwd(g_nctx, st_net_prop, rec["s_nctx"],
                                  out_act="tanh", alloc=alloc)
                g_j2 = mlp_bwd(g_nat, st_net_inc, rec["s_ninc"],
                               out_act="softplus", alloc=alloc)
                g_joint += g_j2
                alloc.release_all((g_j2, g_nctx, g_nat))
                scatter_add(ghp, lv.net_src, g_joint[:, :d_prop],
                            schedule=lv.net_src_sched, alloc=alloc)
                # Each net sink has exactly one driver: unique rows.
                ghe[lv.net_dst] += g_joint[:, d_prop:d_prop + d_emb]
                alloc.release(g_joint)
                _release_saved(alloc, rec["s_nctx"])
                _release_saved(alloc, rec["s_ninc"])
            alloc.release_all(rec.pop("bufs", ()))
        if len(sources):
            g_si = alloc.take((len(sources), d_prop), dtype)
            ghp.take(sources, axis=0, out=g_si)
            g_src = mlp_bwd(g_si, st_init, s_init, out_act="tanh",
                            alloc=alloc)
            g_sa = alloc.take((len(sources), 4), dtype)
            gat.take(sources, axis=0, out=g_sa)
            g_s2 = mlp_bwd(g_sa, st_at0, s_at0, out_act="softplus",
                           alloc=alloc)
            g_src += g_s2
            ghe[sources] += g_src
            alloc.release_all((g_si, g_sa, g_src, g_s2))
            _release_saved(alloc, s_init)
            _release_saved(alloc, s_at0)
            alloc.release_all(src_bufs)
        alloc.release_all((ghp, gat))
        if token is not None:
            plan.end(token)
        if model.agg_gate.requires_grad:
            model.agg_gate._accumulate(g_gate * gate * (1.0 - gate),
                                       own=True)
        if h_emb.requires_grad:
            h_emb._accumulate(ghe, own=True)

    params = [h_emb, model.agg_gate]
    for st in (st_init, st_at0, st_net_prop, st_net_inc, st_query, st_cx,
               st_cy, st_msg, st_cinc, st_comb):
        for w, b, _act in st:
            params.append(w)
            if b is not None:
                params.append(b)
    root = nn.Tensor._make(np.zeros((), dtype=dtype), tuple(params),
                           mega_backward)
    if save and token is not None:
        # If the tape is abandoned (never backpropagated), recover the
        # arena lease when the root dies; end() is idempotent per token,
        # so the normal mega_backward release wins when it runs first.
        weakref.finalize(root, plan.end, token)

    def _output(data, key):
        # Glue node: stashes its gradient and pokes the root so the
        # shared closure fires exactly once, after every used output's
        # gradient has been accumulated (reverse-topological order).
        def backward(g):
            holder[key] = g
            root._accumulate(np.zeros((), dtype=dtype))

        return nn.Tensor._make(data, (root,), backward)

    return (_output(hp, "hp"), _output(atb, "at"),
            _output(cell_delay, "cd"), edge_order)
