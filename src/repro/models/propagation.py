"""Delay propagation model (paper Sec. 3.3.2).

Mirrors a timing engine's levelized propagation: node state flows through
the DAG level by level, alternating net propagation and cell propagation
layers.  Every node is updated exactly once (asynchronously, in level
order), so a single pass covers arbitrarily deep logic — this is the
paper's answer to the receptive-field problem of conventional GNNs.

Two kinds of state propagate together, exactly as in an STA engine:

* a bounded context vector ``h_prop`` (tanh-limited; the learned
  analogue of slew/load bookkeeping) — unbounded recurrent states would
  diverge over the up-to-hundreds of levels a design has;
* an unbounded 4-channel **arrival accumulator**: every net or cell arc
  adds a softplus-positive learned increment to its source's arrival
  (delays are non-negative, so arrivals are monotone along paths), and
  multi-arc fanin is fused per channel by a learned max/min gate (late
  corners are max-reduced in real STA, early corners min-reduced).

Slew is *not* cumulative — it is a local function of driver strength and
load — so it is predicted from the propagated context by a head rather
than accumulated.  The paper describes the whole construction as "a
timing engine learned from data with neural networks as function
approximators"; the additive arrival structure is what keeps the
effective receptive field unbounded while gradients stay conditioned
(every increment sees the loss directly, like a residual network).

Cell propagation embeds a learned **NLDM LUT interpolation** module: two
MLPs produce interpolation coefficients for the slew axis and the load
axis of each 7x7 look-up table; their Kronecker (outer) product yields a
7x7 coefficient matrix which is dotted with the LUT values — a learnable
generalisation of the bilinear interpolation a real STA engine performs.
The cell-arc arrival increment *is* the model's cell delay prediction,
tying the auxiliary task of Eq. (5) to the quantity used inside
propagation.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .config import ModelConfig

__all__ = ["LUTInterpolation", "LUTFlattenMLP", "DelayPropagation"]


class LUTInterpolation(nn.Module):
    """Learned interpolation over the 8 stacked LUTs of a cell arc."""

    def __init__(self, cfg, rng):
        super().__init__()
        q = cfg.lut_query_dim
        mlp = dict(hidden=cfg.lut_mlp_hidden,
                   num_hidden_layers=cfg.lut_mlp_layers)
        self.query = nn.MLP(cfg.prop_dim + cfg.embedding_dim, q, rng, **mlp)
        self.coeff_x = nn.MLP(q + 7, 7, rng, **mlp)
        self.coeff_y = nn.MLP(q + 7, 7, rng, **mlp)

    def forward(self, h_src_prop, h_dst_emb, valid, indices, values):
        """Per-edge LUT outputs.

        ``valid`` (E, 8), ``indices`` (E, 112), ``values`` (E, 392);
        returns (E, 8) — one interpolated value per LUT.  The query sees
        the source context (which carries the input-slew information a
        real NLDM lookup is indexed by) and the destination embedding
        (which carries the load statistics).
        """
        e = len(valid)
        q = self.query(nn.concat([h_src_prop, h_dst_emb])).tanh()
        # Expand the query to one row per (edge, table).
        rep = np.repeat(np.arange(e), 8)
        q8 = nn.gather_rows(q, rep)
        idx = np.asarray(indices).reshape(e * 8, 14)
        ax = self.coeff_x(nn.concat([q8, nn.Tensor(idx[:, :7])]))
        ay = self.coeff_y(nn.concat([q8, nn.Tensor(idx[:, 7:])]))
        # Kronecker combination of the two axis-coefficient vectors,
        # dotted with the LUT value matrix.
        coeff = nn.batched_outer(ax, ay)                      # (E*8, 49)
        vals = nn.Tensor(np.asarray(values).reshape(e * 8, 49))
        out = (coeff * vals).sum(axis=1).reshape(e, 8)
        return out * nn.Tensor(np.asarray(valid))


class LUTFlattenMLP(nn.Module):
    """Ablation alternative to :class:`LUTInterpolation`: a plain MLP on
    the flattened 512-dim LUT features.  No interpolation structure —
    this is what a generic heterogeneous GNN would do with the cell
    library, and what the Kronecker module is benchmarked against."""

    def __init__(self, cfg, rng):
        super().__init__()
        in_dim = cfg.prop_dim + cfg.embedding_dim + 8 + 112 + 392
        self.net = nn.MLP(in_dim, 8, rng, hidden=cfg.lut_mlp_hidden,
                          num_hidden_layers=cfg.lut_mlp_layers)

    def forward(self, h_src_prop, h_dst_emb, valid, indices, values):
        out = self.net(nn.concat([
            h_src_prop, h_dst_emb, nn.Tensor(np.asarray(valid)),
            nn.Tensor(np.asarray(indices)), nn.Tensor(np.asarray(values))]))
        return out * nn.Tensor(np.asarray(valid))


class DelayPropagation(nn.Module):
    """Levelized arrival-time / slew propagation with auxiliary heads."""

    def __init__(self, cfg=None, rng=None):
        super().__init__()
        cfg = cfg or ModelConfig.paper()
        rng = rng or np.random.default_rng(cfg.seed + 1)
        self.cfg = cfg
        d_emb, d_prop = cfg.embedding_dim, cfg.prop_dim
        mlp = dict(hidden=cfg.mlp_hidden, num_hidden_layers=cfg.mlp_layers)
        # Sources (primary inputs, register Q pins) initialise from the
        # net embedding, which carries the load statistics the CK->Q
        # launch delay depends on.
        self.source_init = nn.MLP(d_emb, d_prop, rng, **mlp)
        self.source_at = nn.MLP(d_emb, 4, rng, **mlp)
        # Net propagation layer: [prop(driver), emb(sink), edge feats].
        self.net_prop = nn.MLP(d_prop + d_emb + cfg.net_edge_feat_dim,
                               d_prop, rng, **mlp)
        self.net_inc = nn.MLP(d_prop + d_emb + cfg.net_edge_feat_dim,
                              4, rng, **mlp)
        # Cell propagation: learned LUT lookup + message + two reduction
        # channels (sum, max), like the cell-arc max in an STA engine.
        from .net_embedding import num_reduction_channels
        self.reduction = cfg.reduction
        n_ch = num_reduction_channels(cfg.reduction)
        if cfg.lut_mode == "kron":
            self.lut = LUTInterpolation(cfg, rng)
        elif cfg.lut_mode == "mlp":
            self.lut = LUTFlattenMLP(cfg, rng)
        else:
            raise ValueError(f"unknown lut_mode {cfg.lut_mode!r}")
        self.cell_msg = nn.MLP(d_prop + d_emb + 8, d_prop, rng, **mlp)
        self.cell_inc = nn.MLP(d_prop + 8, 4, rng, **mlp)
        self.cell_combine = nn.MLP(d_emb + n_ch * d_prop, d_prop, rng, **mlp)
        # Per-channel gate mixing max- and min-aggregation of fanin
        # arrival candidates.
        self.agg_gate = nn.Tensor(np.zeros(4), requires_grad=True)
        # Output heads: signed arrival refinement and positive slew.
        self.refine_at = nn.MLP(d_emb + d_prop, 4, rng, **mlp)
        self.slew_head = nn.MLP(d_emb + d_prop, 4, rng, **mlp)

    def forward(self, graph, h_emb):
        """Propagate through ``graph.levels``.

        Returns (atslew (N, 8), cell_delay (E_cell, 4) aligned with
        ``edge_order``, edge_order).
        """
        n = graph.num_nodes
        h_prop = nn.Tensor(np.zeros((n, self.cfg.prop_dim)))
        at = nn.Tensor(np.zeros((n, 4)))
        sources = np.nonzero(graph.is_source)[0]
        if len(sources):
            h_emb_src = nn.gather_rows(h_emb, sources)
            h_prop = nn.scatter_rows(h_prop, sources,
                                     self.source_init(h_emb_src).tanh())
            at = nn.scatter_rows(at, sources,
                                 self.source_at(h_emb_src).softplus())

        delay_chunks, delay_orders = [], []
        for block in graph.levels:
            idx_parts, ctx_parts, at_parts = [], [], []
            if len(block.net_eids):
                eids = block.net_eids
                h_s = nn.gather_rows(h_prop, graph.net_src[eids])
                at_s = nn.gather_rows(at, graph.net_src[eids])
                h_d = nn.gather_rows(h_emb, graph.net_dst[eids])
                ef = nn.Tensor(graph.net_features[eids])
                joint = nn.concat([h_s, h_d, ef])
                # Every net sink has exactly one driver, so the edge list
                # itself indexes the destination nodes uniquely.
                idx_parts.append(graph.net_dst[eids])
                ctx_parts.append(self.net_prop(joint).tanh())
                at_parts.append(at_s + self.net_inc(joint).softplus())
            if len(block.cell_eids):
                eids = block.cell_eids
                h_s = nn.gather_rows(h_prop, graph.cell_src[eids])
                at_s = nn.gather_rows(at, graph.cell_src[eids])
                h_d = nn.gather_rows(h_emb, graph.cell_dst[eids])
                lut_out = self.lut(h_s, h_d, graph.cell_valid[eids],
                                   graph.cell_indices[eids],
                                   graph.cell_values[eids])
                msg = self.cell_msg(nn.concat([h_s, h_d, lut_out])).tanh()
                inc = self.cell_inc(nn.concat([msg, lut_out])).softplus()
                # The arrival increment is the cell delay itself (Eq. 5).
                delay_chunks.append(inc)
                delay_orders.append(eids)
                cand = at_s + inc
                n_dst = len(block.cell_dst)
                agg_max = nn.segment_max(cand, block.cell_seg, n_dst)
                agg_min = nn.segment_max(cand * -1.0, block.cell_seg,
                                         n_dst) * -1.0
                gate = self.agg_gate.sigmoid().reshape(1, 4)
                at_new = agg_max * gate + agg_min * (1.0 - gate)
                from .net_embedding import reduction_channels
                aggs = reduction_channels(msg, block.cell_seg, n_dst,
                                          self.reduction)
                h_d_u = nn.gather_rows(h_emb, block.cell_dst)
                ctx = self.cell_combine(nn.concat([h_d_u] + aggs)).tanh()
                idx_parts.append(block.cell_dst)
                ctx_parts.append(ctx)
                at_parts.append(at_new)
            if idx_parts:
                index = np.concatenate(idx_parts)
                ctx_vals = (ctx_parts[0] if len(ctx_parts) == 1
                            else nn.concat(ctx_parts, axis=0))
                at_vals = (at_parts[0] if len(at_parts) == 1
                           else nn.concat(at_parts, axis=0))
                h_prop = nn.scatter_rows(h_prop, index, ctx_vals)
                at = nn.scatter_rows(at, index, at_vals)

        state = nn.concat([h_emb, h_prop])
        arrival = at + self.refine_at(state)
        slew = self.slew_head(state).softplus()
        atslew = nn.concat([arrival, slew])
        if delay_chunks:
            cell_delay = (delay_chunks[0] if len(delay_chunks) == 1
                          else nn.concat(delay_chunks, axis=0))
            edge_order = np.concatenate(delay_orders)
        else:
            cell_delay = nn.Tensor(np.zeros((0, 4)))
            edge_order = np.zeros(0, dtype=np.int64)
        return atslew, cell_delay, edge_order
