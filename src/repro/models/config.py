"""Shared model hyper-parameters.

Paper defaults: every MLP has 3 hidden layers of 64 neurons; the net
embedding model stacks 3 net convolution layers.  The ``fast()`` profile
shrinks widths for quick tests while keeping every architectural element.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ModelConfig"]


@dataclass(frozen=True)
class ModelConfig:
    node_feat_dim: int = 10
    net_edge_feat_dim: int = 2
    embedding_dim: int = 64          # net embedding output width
    prop_dim: int = 64               # propagation state width
    mlp_hidden: int = 64             # width of hidden MLP layers
    mlp_layers: int = 3              # hidden layers per MLP (paper: 3x64)
    lut_query_dim: int = 32          # query vector for LUT interpolation
    lut_mlp_hidden: int = 32         # hidden width inside the LUT module
    lut_mlp_layers: int = 2
    num_net_conv_layers: int = 3     # paper: three net convolution layers
    seed: int = 7
    # Ablation switches (DESIGN.md design-choice ablations):
    # reduction channels used in net embedding / cell propagation.
    reduction: str = "both"          # "sum" | "max" | "both"
    # LUT consumption: the paper's Kronecker interpolation module vs. a
    # plain MLP over the flattened LUT features.
    lut_mode: str = "kron"           # "kron" | "mlp"

    @staticmethod
    def paper():
        return ModelConfig()

    @staticmethod
    def fast():
        """Small profile for unit tests: same architecture, thin layers."""
        return ModelConfig(embedding_dim=16, prop_dim=16, mlp_hidden=16,
                           mlp_layers=2, lut_query_dim=8, lut_mlp_hidden=12,
                           lut_mlp_layers=1)

    @staticmethod
    def benchmark():
        """Profile used by the experiment harness: close to the paper but
        sized for CPU-only training on the scaled benchmark suite."""
        return ModelConfig(embedding_dim=32, prop_dim=32, mlp_hidden=48,
                           mlp_layers=2, lut_query_dim=16, lut_mlp_hidden=24,
                           lut_mlp_layers=2)
