"""Float dtype policy: the ``REPRO_DTYPE`` switch.

Everything numerical in the reproduction falls into two regimes:

* **Ground truth** — the STA engine, golden fixtures, dataset labels and
  the naive differential reference.  These stay ``float64`` always; the
  1e-9 fused==naive contract and the bit-exact golden comparators are
  only meaningful at full precision.
* **Model compute** — tensors, kernels and the propagation mega-op.
  These follow the *active dtype*: ``float64`` by default (so the seed
  behaviour is unchanged), ``float32`` when requested — roughly 2x on
  the BLAS-bound MLP chains and half the tape memory traffic.

The active dtype is resolved per thread: ``REPRO_DTYPE`` sets the
process default, :class:`use_dtype` overrides it for a scope (the same
shape as :class:`repro.nn.kernels.use_kernels`), and
:func:`set_default_dtype` changes the process default at runtime.  The
fused-vs-naive differential tolerance is dtype-aware
(:func:`contract_tol`): 1e-9 relative at fp64, 1e-4 relative at fp32.
"""

from __future__ import annotations

import os
import threading

import numpy as np

__all__ = ["DTYPES", "active_dtype", "set_default_dtype", "use_dtype",
           "contract_tol"]

#: Names accepted by REPRO_DTYPE / use_dtype.
DTYPES = ("float32", "float64")


def _resolve(name):
    dtype = np.dtype(name)
    if dtype.name not in DTYPES:
        raise ValueError(
            f"unsupported dtype {name!r} (REPRO_DTYPE must be one of "
            f"{DTYPES})")
    return dtype


_DEFAULT = _resolve(os.environ.get("REPRO_DTYPE", "float64").strip()
                    or "float64")


class _DtypeState(threading.local):
    """Per-thread dtype override stack (see :class:`use_dtype`)."""

    def __init__(self):
        self.stack = []


_STATE = _DtypeState()


def active_dtype():
    """The dtype new tensors and kernel buffers are created with."""
    return _STATE.stack[-1] if _STATE.stack else _DEFAULT


def set_default_dtype(name):
    """Set the process-wide default dtype (overrides REPRO_DTYPE)."""
    global _DEFAULT
    _DEFAULT = _resolve(name)


class use_dtype:
    """Context manager selecting the compute dtype for this thread."""

    def __init__(self, name):
        self.dtype = _resolve(name)

    def __enter__(self):
        _STATE.stack.append(self.dtype)
        return self

    def __exit__(self, exc_type, exc, tb):
        _STATE.stack.pop()
        return False


def contract_tol(dtype=None):
    """The fused==naive differential tolerance ``(rtol, atol)``.

    1e-9/1e-12 at float64 (the reference regime), 1e-4/1e-6 at float32
    — fp32 has ~7 significant digits and the two backends sum segments
    in different orders, so a relative contract near the mantissa floor
    is the correct bound.
    """
    dtype = np.dtype(dtype) if dtype is not None else active_dtype()
    if dtype == np.float64:
        return 1e-9, 1e-12
    return 1e-4, 1e-6
