"""Optimizers: SGD with momentum and Adam (the paper trains with Adam-style
stochastic gradient descent; we default to Adam throughout)."""

from __future__ import annotations

import numpy as np

__all__ = ["SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters, max_norm):
    """Scale gradients in place so their global L2 norm is at most max_norm."""
    parameters = [p for p in parameters if p.grad is not None]
    total = np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in parameters:
            p.grad *= scale
    return total


class Optimizer:
    def __init__(self, parameters, lr):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self):
        for p in self.parameters:
            p.zero_grad()

    def step(self):
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, parameters, lr=1e-2, momentum=0.0, weight_decay=0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            v *= self.momentum
            v += grad
            p.data -= self.lr * v


class Adam(Optimizer):
    """Adam (Kingma & Ba) with optional decoupled weight decay."""

    def __init__(self, parameters, lr=1e-3, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self):
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            p.data -= self.lr * update
