"""Graph and structural operations for the autograd tensor.

These are the operations DGL would normally provide: message gathering
(`gather_rows`), functional node updates (`scatter_rows`), segment
reductions over edge groups (`segment_sum` / `segment_max`), the batched
outer product used by the paper's Kronecker LUT-interpolation module, and
sparse-dense matmul for the GCNII baseline.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor, is_grad_enabled

__all__ = [
    "concat",
    "stack",
    "gather_rows",
    "scatter_rows",
    "segment_sum",
    "segment_max",
    "segment_mean",
    "batched_outer",
    "spmm",
    "maximum",
    "dropout",
    "mse_loss",
    "l2_loss",
]


def concat(tensors, axis=-1):
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    datas = [t.data for t in tensors]
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * g.ndim
                index[axis] = slice(lo, hi)
                t._accumulate(g[tuple(index)])

    return Tensor._make(np.concatenate(datas, axis=axis), tuple(tensors), backward)


def stack(tensors, axis=0):
    """Stack tensors along a new axis."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]

    def backward(g):
        parts = np.split(g, len(tensors), axis=axis)
        for t, part in zip(tensors, parts):
            if t.requires_grad:
                t._accumulate(np.squeeze(part, axis=axis))

    return Tensor._make(np.stack([t.data for t in tensors], axis=axis),
                        tuple(tensors), backward)


def gather_rows(t, index):
    """Select rows ``t[index]`` (edges gathering endpoint features)."""
    index = np.asarray(index, dtype=np.int64)
    a = t

    def backward(g):
        if a.requires_grad:
            full = np.zeros_like(a.data)
            np.add.at(full, index, g)
            a._accumulate(full)

    return Tensor._make(a.data[index], (a,), backward)


def scatter_rows(t, index, values):
    """Return a copy of ``t`` with ``t[index] = values`` (functional update).

    ``index`` must not contain duplicates; this is the levelized update of
    the delay-propagation model where each node is written exactly once.
    """
    index = np.asarray(index, dtype=np.int64)
    if len(np.unique(index)) != len(index):
        raise ValueError("scatter_rows requires unique row indices")
    a, v = t, values
    out = a.data.copy()
    out[index] = v.data

    def backward(g):
        if a.requires_grad:
            masked = g.copy()
            masked[index] = 0.0
            a._accumulate(masked)
        if v.requires_grad:
            v._accumulate(g[index])

    return Tensor._make(out, (a, v), backward)


def segment_sum(t, segment_ids, num_segments):
    """Sum rows of ``t`` grouped by ``segment_ids`` into ``num_segments`` rows."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    a = t
    out = np.zeros((num_segments,) + a.data.shape[1:], dtype=a.data.dtype)
    np.add.at(out, segment_ids, a.data)

    def backward(g):
        if a.requires_grad:
            a._accumulate(g[segment_ids])

    return Tensor._make(out, (a,), backward)


def segment_max(t, segment_ids, num_segments):
    """Max-reduce rows of ``t`` by segment.  Empty segments yield zeros.

    Gradient is split evenly between tied maxima within a segment.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    a = t
    out = np.full((num_segments,) + a.data.shape[1:], -np.inf, dtype=a.data.dtype)
    np.maximum.at(out, segment_ids, a.data)
    empty = ~np.isfinite(out)
    out = np.where(empty, 0.0, out)
    mask = (a.data == out[segment_ids]).astype(a.data.dtype)
    counts = np.zeros_like(out)
    np.add.at(counts, segment_ids, mask)

    def backward(g):
        if a.requires_grad:
            denom = np.maximum(counts, 1.0)
            a._accumulate(mask * (g / denom)[segment_ids])

    return Tensor._make(out, (a,), backward)


def segment_mean(t, segment_ids, num_segments):
    """Mean-reduce rows by segment (empty segments yield zeros)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    total = segment_sum(t, segment_ids, num_segments)
    scale = 1.0 / np.maximum(counts, 1.0)
    return total * Tensor(scale[:, None] if total.ndim == 2 else scale)


def batched_outer(a, b):
    """Per-row outer product: (E, m) x (E, n) -> (E, m*n).

    This implements the Kronecker-product combination of the two LUT-axis
    coefficient vectors in the paper's LUT interpolation module (Sec. 3.3.2).
    """
    ta, tb = a, b
    out = ta.data[:, :, None] * tb.data[:, None, :]
    m, n = ta.data.shape[1], tb.data.shape[1]

    def backward(g):
        g3 = g.reshape(-1, m, n)
        if ta.requires_grad:
            ta._accumulate((g3 * tb.data[:, None, :]).sum(axis=2))
        if tb.requires_grad:
            tb._accumulate((g3 * ta.data[:, :, None]).sum(axis=1))

    return Tensor._make(out.reshape(-1, m * n), (ta, tb), backward)


def spmm(matrix, t):
    """Sparse @ dense product with gradient ``matrix.T @ g`` (GCNII's P H)."""
    if not sp.issparse(matrix):
        raise TypeError("spmm expects a scipy sparse matrix")
    matrix = matrix.tocsr()
    a = t
    mt = matrix.T.tocsr()

    def backward(g):
        if a.requires_grad:
            a._accumulate(mt @ g)

    return Tensor._make(matrix @ a.data, (a,), backward)


def maximum(a, b):
    """Elementwise maximum of two tensors (ties send gradient to both halves)."""
    ta = a if isinstance(a, Tensor) else Tensor(a)
    tb = b if isinstance(b, Tensor) else Tensor(b)
    take_a = ta.data >= tb.data

    def backward(g):
        if ta.requires_grad:
            ta._accumulate(g * take_a)
        if tb.requires_grad:
            tb._accumulate(g * ~take_a)

    return Tensor._make(np.where(take_a, ta.data, tb.data), (ta, tb), backward)


def dropout(t, rate, rng, training=True):
    """Inverted dropout; identity when not training or rate == 0."""
    if not training or rate <= 0.0:
        return t
    mask = (rng.random(t.data.shape) >= rate) / (1.0 - rate)
    return t * Tensor(mask)


def mse_loss(pred, target, mask=None):
    """Mean squared error, optionally restricted to rows where mask is true."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target
    sq = diff * diff
    if mask is not None:
        mask = np.asarray(mask)
        if mask.dtype == bool:
            mask = mask.astype(np.float64)
        weights = mask if mask.ndim == sq.ndim else mask[:, None]
        sq = sq * Tensor(np.broadcast_to(weights, sq.data.shape).copy())
        denom = float(np.broadcast_to(weights, sq.data.shape).sum())
        if denom == 0.0:
            return Tensor(0.0)
        return sq.sum() * (1.0 / denom)
    return sq.mean()


def l2_loss(pred, target, mask=None):
    """Paper-style L2 objective (Eqs. 4-6): mean squared error over entries."""
    return mse_loss(pred, target, mask=mask)
