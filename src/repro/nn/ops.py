"""Graph and structural operations for the autograd tensor.

These are the operations DGL would normally provide: message gathering
(`gather_rows`), functional node updates (`scatter_rows`), segment
reductions over edge groups (`segment_sum` / `segment_max`), the batched
outer product used by the paper's Kronecker LUT-interpolation module, and
sparse-dense matmul for the GCNII baseline.

Each segment/gather op dispatches on the active kernel backend (see
:mod:`repro.nn.kernels`): the default ``fused`` backend uses sorted-CSR
``reduceat`` kernels and fused tape nodes, while ``REPRO_KERNELS=naive``
keeps the reference ``np.add.at`` / ``np.maximum.at`` implementations
below, preserved verbatim for differential testing.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from . import kernels
from .tensor import Tensor, is_grad_enabled

__all__ = [
    "concat",
    "stack",
    "gather_rows",
    "gather_concat",
    "gather_add",
    "scatter_rows",
    "segment_sum",
    "segment_max",
    "segment_minmax",
    "segment_minmax_gate",
    "segment_mean",
    "batched_outer",
    "lut_kron_combine",
    "spmm",
    "maximum",
    "dropout",
    "mse_loss",
    "l2_loss",
]


def concat(tensors, axis=-1):
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    datas = [t.data for t in tensors]
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * g.ndim
                index[axis] = slice(lo, hi)
                t._accumulate(g[tuple(index)])

    return Tensor._make(np.concatenate(datas, axis=axis), tuple(tensors), backward)


def stack(tensors, axis=0):
    """Stack tensors along a new axis."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]

    def backward(g):
        parts = np.split(g, len(tensors), axis=axis)
        for t, part in zip(tensors, parts):
            if t.requires_grad:
                t._accumulate(np.squeeze(part, axis=axis))

    return Tensor._make(np.stack([t.data for t in tensors], axis=axis),
                        tuple(tensors), backward)


def gather_rows(t, index, schedule=None):
    """Select rows ``t[index]`` (edges gathering endpoint features).

    ``schedule`` is an optional :class:`~repro.nn.kernels.SegmentSchedule`
    for ``index``; the fused backend uses it to turn the duplicate-index
    gradient scatter into a pre-sorted ``reduceat``.
    """
    if kernels.is_fused():
        return kernels.gather_rows_csr(t, index, schedule=schedule)
    index = np.asarray(index, dtype=np.int64)
    a = t

    def backward(g):
        if a.requires_grad:
            full = np.zeros_like(a.data)
            np.add.at(full, index, g)
            a._accumulate(full)

    return Tensor._make(a.data[index], (a,), backward)


def gather_concat(tensors, indices, schedules=None):
    """Fused gather-then-concat of edge inputs along axis 1.

    ``indices[k]`` indexes rows of ``tensors[k]`` (``None`` = already
    row-aligned).  The fused backend assembles the result with a single
    copy and one tape node; the naive backend is the equivalent
    ``concat([gather_rows(t, i), ...])`` chain.
    """
    if kernels.is_fused():
        return kernels.gather_concat(tensors, indices, schedules=schedules)
    parts = []
    for k, (t, i) in enumerate(zip(tensors, indices)):
        t = t if isinstance(t, Tensor) else Tensor(t)
        sched = schedules[k] if schedules is not None else None
        parts.append(t if i is None else gather_rows(t, i, schedule=sched))
    return concat(parts)


def gather_add(t, index, addend, schedule=None):
    """Fused ``t[index] + addend`` — the arrival-update pattern.

    The fused backend runs gather and add as one tape node with a CSR
    gradient scatter; the naive path is the reference
    ``gather_rows(t, index) + addend`` composition.
    """
    if kernels.is_fused():
        return kernels.gather_add_csr(t, index, addend, schedule=schedule)
    return gather_rows(t, index, schedule=schedule) + addend


def scatter_rows(t, index, values):
    """Return a copy of ``t`` with ``t[index] = values`` (functional update).

    ``index`` must not contain duplicates; this is the levelized update of
    the delay-propagation model where each node is written exactly once.
    """
    index = np.asarray(index, dtype=np.int64)
    if len(np.unique(index)) != len(index):
        raise ValueError("scatter_rows requires unique row indices")
    a, v = t, values
    out = a.data.copy()
    out[index] = v.data

    def backward(g):
        if a.requires_grad:
            masked = g.copy()
            masked[index] = 0.0
            a._accumulate(masked)
        if v.requires_grad:
            v._accumulate(g[index])

    return Tensor._make(out, (a, v), backward)


def segment_sum(t, segment_ids, num_segments, schedule=None):
    """Sum rows of ``t`` grouped by ``segment_ids`` into ``num_segments`` rows."""
    if kernels.is_fused():
        return kernels.segment_sum_csr(t, segment_ids, num_segments,
                                       schedule=schedule)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    a = t
    out = np.zeros((num_segments,) + a.data.shape[1:], dtype=a.data.dtype)
    np.add.at(out, segment_ids, a.data)

    def backward(g):
        if a.requires_grad:
            a._accumulate(g[segment_ids])

    return Tensor._make(out, (a,), backward)


def segment_max(t, segment_ids, num_segments, schedule=None):
    """Max-reduce rows of ``t`` by segment.  Empty segments yield zeros.

    Gradient is split evenly between tied maxima within a segment.
    """
    if kernels.is_fused():
        return kernels.segment_max_csr(t, segment_ids, num_segments,
                                       schedule=schedule)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    a = t
    out = np.full((num_segments,) + a.data.shape[1:], -np.inf, dtype=a.data.dtype)
    np.maximum.at(out, segment_ids, a.data)
    empty = ~np.isfinite(out)
    out = np.where(empty, 0.0, out)
    mask = (a.data == out[segment_ids]).astype(a.data.dtype)
    counts = np.zeros_like(out)
    np.add.at(counts, segment_ids, mask)

    def backward(g):
        if a.requires_grad:
            denom = np.maximum(counts, 1.0)
            a._accumulate(mask * (g / denom)[segment_ids])

    return Tensor._make(out, (a,), backward)


def segment_minmax(t, segment_ids, num_segments, schedule=None):
    """Per-segment (max, min) pair; empty segments yield zeros in both.

    The fused backend sorts once and runs both ``reduceat`` sweeps over
    the same layout; the naive path is the reference two-pass
    ``segment_max`` / negated ``segment_max`` construction.
    """
    if kernels.is_fused():
        return kernels.segment_minmax_csr(t, segment_ids, num_segments,
                                          schedule=schedule)
    agg_max = segment_max(t, segment_ids, num_segments)
    agg_min = segment_max(t * -1.0, segment_ids, num_segments) * -1.0
    return agg_max, agg_min


def segment_minmax_gate(t, segment_ids, num_segments, gate_logits,
                        schedule=None):
    """Late/early fanin aggregation ``max*g + min*(1-g)``, gated per
    channel by ``g = sigmoid(gate_logits)``.

    The fused backend runs extrema, gate, and mix as one tape node; the
    naive path is the reference ``segment_minmax`` + sigmoid-gate
    composition used by the delay-propagation model.
    """
    if kernels.is_fused():
        return kernels.segment_minmax_gate_csr(
            t, segment_ids, num_segments, gate_logits, schedule=schedule)
    agg_max, agg_min = segment_minmax(t, segment_ids, num_segments,
                                      schedule=schedule)
    gate = gate_logits.sigmoid().reshape(1, -1)
    return agg_max * gate + agg_min * (1.0 - gate)


def segment_mean(t, segment_ids, num_segments, schedule=None):
    """Mean-reduce rows by segment (empty segments yield zeros)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids,
                         minlength=num_segments).astype(t.data.dtype)
    total = segment_sum(t, segment_ids, num_segments, schedule=schedule)
    scale = (1.0 / np.maximum(counts, 1.0)).astype(t.data.dtype)
    return total * Tensor(scale[:, None] if total.ndim == 2 else scale)


def batched_outer(a, b):
    """Per-row outer product: (E, m) x (E, n) -> (E, m*n).

    This implements the Kronecker-product combination of the two LUT-axis
    coefficient vectors in the paper's LUT interpolation module (Sec. 3.3.2).
    """
    ta, tb = a, b
    out = ta.data[:, :, None] * tb.data[:, None, :]
    m, n = ta.data.shape[1], tb.data.shape[1]

    def backward(g):
        g3 = g.reshape(-1, m, n)
        if ta.requires_grad:
            ta._accumulate((g3 * tb.data[:, None, :]).sum(axis=2))
        if tb.requires_grad:
            tb._accumulate((g3 * ta.data[:, :, None]).sum(axis=1))

    return Tensor._make(out.reshape(-1, m * n), (ta, tb), backward)


def lut_kron_combine(ax, ay, values, valid):
    """Kronecker LUT combination: ``((ax (x) ay) . values)`` per row,
    reshaped to (E, 8) and masked by ``valid``.

    ``ax``/``ay`` are the (E*8, 7) axis-coefficient tensors; ``values``
    (E*8, 49) and ``valid`` (E, 8) are plain arrays.  The fused backend
    evaluates ``ax . (V @ ay)`` per row as one tape node without ever
    materialising the (E*8, 49) coefficient matrix; the naive path is
    the reference ``batched_outer`` composition.
    """
    values = np.asarray(values)
    valid = np.asarray(valid)
    if kernels.is_fused():
        return kernels.lut_kron_combine_csr(ax, ay, values, valid)
    e = len(valid)
    coeff = batched_outer(ax, ay)
    out = (coeff * Tensor(values)).sum(axis=1).reshape(e, 8)
    return out * Tensor(valid)


def spmm(matrix, t):
    """Sparse @ dense product with gradient ``matrix.T @ g`` (GCNII's P H)."""
    if not sp.issparse(matrix):
        raise TypeError("spmm expects a scipy sparse matrix")
    matrix = matrix.tocsr()
    a = t
    mt = matrix.T.tocsr()

    def backward(g):
        if a.requires_grad:
            a._accumulate(mt @ g)

    return Tensor._make(matrix @ a.data, (a,), backward)


def maximum(a, b):
    """Elementwise maximum of two tensors (ties send gradient to both halves)."""
    ta = a if isinstance(a, Tensor) else Tensor(a)
    tb = b if isinstance(b, Tensor) else Tensor(b)
    take_a = ta.data >= tb.data

    def backward(g):
        if ta.requires_grad:
            ta._accumulate(g * take_a)
        if tb.requires_grad:
            tb._accumulate(g * ~take_a)

    return Tensor._make(np.where(take_a, ta.data, tb.data), (ta, tb), backward)


def dropout(t, rate, rng, training=True):
    """Inverted dropout; identity when not training or rate == 0."""
    if not training or rate <= 0.0:
        return t
    mask = (rng.random(t.data.shape) >= rate) / (1.0 - rate)
    return t * Tensor(mask)


def mse_loss(pred, target, mask=None):
    """Mean squared error, optionally restricted to rows where mask is true."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target
    sq = diff * diff
    if mask is not None:
        mask = np.asarray(mask)
        if mask.dtype == bool:
            mask = mask.astype(sq.data.dtype)
        weights = mask if mask.ndim == sq.ndim else mask[:, None]
        sq = sq * Tensor(np.broadcast_to(weights, sq.data.shape).copy())
        denom = float(np.broadcast_to(weights, sq.data.shape).sum())
        if denom == 0.0:
            return Tensor(0.0)
        return sq.sum() * (1.0 / denom)
    return sq.mean()


def l2_loss(pred, target, mask=None):
    """Paper-style L2 objective (Eqs. 4-6): mean squared error over entries."""
    return mse_loss(pred, target, mask=mask)
