"""Minimal numpy-based deep learning framework (autograd, modules, optim).

Stands in for PyTorch + DGL in this reproduction: reverse-mode autograd
tensors, graph message-passing primitives (gather/scatter/segment ops),
MLP modules, and Adam/SGD optimizers.
"""

from .tensor import Tensor, no_grad, is_grad_enabled
from .ops import (
    concat,
    stack,
    gather_rows,
    scatter_rows,
    segment_sum,
    segment_max,
    segment_mean,
    batched_outer,
    spmm,
    maximum,
    dropout,
    mse_loss,
    l2_loss,
)
from .modules import Module, Linear, MLP, Sequential, ReLU, Sigmoid, Tanh
from .optim import SGD, Adam, clip_grad_norm

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled",
    "concat", "stack", "gather_rows", "scatter_rows",
    "segment_sum", "segment_max", "segment_mean",
    "batched_outer", "spmm", "maximum", "dropout", "mse_loss", "l2_loss",
    "Module", "Linear", "MLP", "Sequential", "ReLU", "Sigmoid", "Tanh",
    "SGD", "Adam", "clip_grad_norm",
]
