"""Minimal numpy-based deep learning framework (autograd, modules, optim).

Stands in for PyTorch + DGL in this reproduction: reverse-mode autograd
tensors, graph message-passing primitives (gather/scatter/segment ops),
MLP modules, and Adam/SGD optimizers.
"""

from .tensor import Tensor, no_grad, is_grad_enabled
from . import kernels
from .kernels import (SegmentSchedule, affine_act, kernel_backend,
                      mlp_chain, use_kernels)
from .dtype import (DTYPES, active_dtype, contract_tol, set_default_dtype,
                    use_dtype)
from .arena import (TapeArena, arena_enabled, use_arena, grad_pool_stats,
                    clear_grad_pool)
from .threads import (thread_count, min_parallel_rows, use_threads,
                      parallel_enabled)
from .ops import (
    concat,
    stack,
    gather_rows,
    gather_concat,
    gather_add,
    scatter_rows,
    segment_sum,
    segment_max,
    segment_minmax,
    segment_minmax_gate,
    segment_mean,
    batched_outer,
    lut_kron_combine,
    spmm,
    maximum,
    dropout,
    mse_loss,
    l2_loss,
)
from .modules import Module, Linear, MLP, Sequential, ReLU, Sigmoid, Tanh
from .optim import SGD, Adam, clip_grad_norm

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled",
    "kernels", "SegmentSchedule", "affine_act", "kernel_backend",
    "mlp_chain", "use_kernels",
    "DTYPES", "active_dtype", "contract_tol", "set_default_dtype",
    "use_dtype",
    "TapeArena", "arena_enabled", "use_arena", "grad_pool_stats",
    "clear_grad_pool",
    "thread_count", "min_parallel_rows", "use_threads", "parallel_enabled",
    "concat", "stack", "gather_rows", "gather_concat", "gather_add",
    "scatter_rows", "segment_sum", "segment_max", "segment_minmax",
    "segment_minmax_gate", "segment_mean", "batched_outer",
    "lut_kron_combine", "spmm", "maximum", "dropout", "mse_loss", "l2_loss",
    "Module", "Linear", "MLP", "Sequential", "ReLU", "Sigmoid", "Tanh",
    "SGD", "Adam", "clip_grad_norm",
]
