"""Fused autograd kernels and the ``REPRO_KERNELS`` backend switch.

The tape in :mod:`repro.nn.tensor` records one closure per primitive op,
which is correct but leaves easy performance on the table for the
patterns the timing models execute millions of times per training run:

* ``affine_act`` — matmul + bias + tanh/relu in **one** tape node (the
  body of every :class:`repro.nn.MLP` layer);
* ``mlp_chain`` — a whole run of Linear(+activation) layers as one tape
  node (what :class:`repro.nn.Sequential` executes for an entire MLP);
* ``gather_concat`` — the ubiquitous ``gather_rows`` x k -> ``concat``
  edge-input assembly, done with a single output allocation and a single
  backward closure;
* ``segment_sum`` / ``segment_max`` over a **sorted CSR layout**
  (:class:`SegmentSchedule`): ``np.add.reduceat`` / ``np.maximum.reduceat``
  replace the order-of-magnitude-slower ``np.add.at`` /
  ``np.maximum.at`` ufunc inner loops;
* ``segment_minmax`` — one sort, both reductions (the propagation model
  needs the max *and* min of every fanin group for its late/early
  aggregation gate; the naive path runs ``segment_max`` twice with a
  negation).

Backend selection: the environment variable ``REPRO_KERNELS`` picks the
process default (``fused``, the default, or ``naive``); the
:class:`use_kernels` context manager overrides it per thread so the two
implementations can be differentially tested in one process
(``tests/test_nn_autograd.py``).  The numerical contract is *fused ==
naive* to tight tolerance on forward values and gradients — the only
differences are floating-point summation order inside segment/scatter
reductions.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from . import threads as _threads
from .arena import NULL_ARENA
from .tensor import Tensor

__all__ = ["BACKENDS", "backend", "kernel_backend", "is_fused",
           "use_kernels", "set_default_backend", "SegmentSchedule",
           "affine_act", "mlp_chain", "mlp_chain_forward_raw",
           "mlp_chain_backward_raw", "gather_concat", "gather_concat_raw",
           "gather_rows_csr",
           "segment_sum_csr", "segment_max_csr", "segment_minmax_csr",
           "gather_add_csr", "lut_kron_combine_csr",
           "segment_minmax_gate_csr", "scatter_add_rows"]

BACKENDS = ("fused", "naive")

_DEFAULT = os.environ.get("REPRO_KERNELS", "fused").strip().lower() or "fused"


class _BackendState(threading.local):
    """Per-thread backend override stack (see :class:`use_kernels`)."""

    def __init__(self):
        self.stack = []


_STATE = _BackendState()


def backend():
    """The active kernel backend name: ``"fused"`` or ``"naive"``."""
    name = _STATE.stack[-1] if _STATE.stack else _DEFAULT
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r} (REPRO_KERNELS must be one "
            f"of {BACKENDS})")
    return name


#: Public alias — ``nn.kernel_backend()`` reads better at call sites.
kernel_backend = backend


def is_fused():
    return backend() == "fused"


def set_default_backend(name):
    """Set the process-wide default backend (overrides REPRO_KERNELS)."""
    if name not in BACKENDS:
        raise ValueError(f"unknown kernel backend {name!r}")
    global _DEFAULT
    _DEFAULT = name


class use_kernels:
    """Context manager selecting the kernel backend for this thread."""

    def __init__(self, name):
        if name not in BACKENDS:
            raise ValueError(f"unknown kernel backend {name!r}")
        self.name = name

    def __enter__(self):
        _STATE.stack.append(self.name)
        return self

    def __exit__(self, exc_type, exc, tb):
        _STATE.stack.pop()
        return False


class SegmentSchedule:
    """Sorted-CSR layout of an integer index vector, built once, reused.

    ``order`` sorts the rows by segment id; ``starts`` are the reduceat
    boundaries of each *present* segment in the sorted order; ``present``
    are the distinct segment ids in ascending order.  One schedule serves
    both directions of the fused kernels: forward segment reductions
    (``ufunc.reduceat`` over ``data[order]``) and backward scatter-add of
    gathered gradients (:func:`scatter_add_rows`).
    """

    __slots__ = ("ids", "order", "starts", "present")

    def __init__(self, segment_ids):
        ids = np.asarray(segment_ids, dtype=np.int64)
        self.ids = ids
        order = np.argsort(ids, kind="stable")
        self.order = order
        sorted_ids = ids[order]
        if len(sorted_ids):
            starts = np.concatenate(
                [[0], np.flatnonzero(np.diff(sorted_ids)) + 1])
        else:
            starts = np.zeros(0, dtype=np.int64)
        self.starts = starts
        self.present = sorted_ids[starts] if len(starts) else starts

    def __len__(self):
        return len(self.ids)


def _schedule_for(segment_ids, schedule):
    if schedule is None:
        return SegmentSchedule(segment_ids)
    return schedule


def scatter_add_rows(out, index, values, schedule=None, alloc=None):
    """``out[index] += values`` with duplicate indices, CSR-accelerated.

    With a :class:`SegmentSchedule` for ``index``, duplicate groups are
    pre-reduced by ``np.add.reduceat`` and written with one unique-index
    fancy assignment; without one, falls back to ``np.add.at``.
    ``alloc`` optionally supplies the reduction scratch from a
    :class:`repro.nn.arena.TapeArena`.
    """
    if schedule is not None and len(schedule.starts):
        alloc = NULL_ARENA if alloc is None else alloc
        reduced = alloc.take((len(schedule.starts),) + values.shape[1:],
                             values.dtype)
        _threads.segment_reduce(np.add, values, schedule.order,
                                schedule.starts, out=reduced, alloc=alloc)
        # out[present] += reduced without the fancy-index temporary.
        tmp = alloc.take(reduced.shape, out.dtype)
        out.take(schedule.present, axis=0, out=tmp)
        tmp += reduced
        out[schedule.present] = tmp
        alloc.release(tmp)
        alloc.release(reduced)
    elif schedule is None:
        np.add.at(out, index, values)
    return out


# -- fused tape nodes ---------------------------------------------------------

_ACTIVATIONS = (None, "relu", "tanh")


def affine_act(x, weight, bias=None, activation=None):
    """Fused ``act(x @ W + b)`` in one tape node.

    ``activation`` is ``None``, ``"relu"`` or ``"tanh"``.  Numerically
    identical to the unfused ``x.affine(W, b).relu()/.tanh()`` chain.
    """
    if activation not in _ACTIVATIONS:
        raise ValueError(f"unknown activation {activation!r}")
    a, w = x, weight
    z = _threads.matmul(a.data, w.data)
    if bias is not None:
        z += bias.data
    if activation == "relu":
        out = np.maximum(z, 0.0)
    elif activation == "tanh":
        out = np.tanh(z)
    else:
        out = z

    def backward(g):
        if activation == "relu":
            gz = np.where(z > 0, g, 0.0)
        elif activation == "tanh":
            gz = g * (1.0 - out ** 2)
        else:
            gz = g
        if a.requires_grad:
            a._accumulate(_threads.matmul(gz, w.data.T), own=True)
        if w.requires_grad:
            w._accumulate(_threads.matmul(a.data.T, gz), own=True)
        if bias is not None and bias.requires_grad:
            bias._accumulate(gz.sum(axis=0), own=True)

    parents = (a, w) if bias is None else (a, w, bias)
    return Tensor._make(out, parents, backward)


_CHAIN_ACTS = (None, "relu", "tanh", "sigmoid", "softplus")


def _apply_act_inplace(z, act, alloc):
    """Apply an activation *in place* on ``z`` (adopted, pre-activation
    values are never needed again)."""
    if act == "relu":
        return np.maximum(z, 0.0, out=z)
    if act == "tanh":
        return np.tanh(z, out=z)
    if act == "sigmoid":
        np.clip(z, -60, 60, out=z)
        np.negative(z, out=z)
        np.exp(z, out=z)
        np.add(z, 1.0, out=z)
        return np.reciprocal(z, out=z)
    if act == "softplus":
        # log1p(exp(-|x|)) + max(x, 0), one scratch for the max term.
        np.clip(z, -60, 60, out=z)
        m = alloc.take(z.shape, z.dtype)
        np.maximum(z, 0.0, out=m)
        np.abs(z, out=z)
        np.negative(z, out=z)
        np.exp(z, out=z)
        np.log1p(z, out=z)
        z += m
        alloc.release(m)
        return z
    return z


def _act_grad_alloc(g, out, act, alloc):
    """Gradient through one activation given its output.

    Writes into a buffer from ``alloc`` (never aliases ``g``); returns
    ``g`` itself when ``act`` is None.
    """
    if act is None:
        return g
    buf = alloc.take(out.shape, out.dtype if g.dtype == out.dtype
                     else np.result_type(g, out))
    if act == "relu":
        # g * (out > 0); relu output is >= 0, so sign(out) IS the mask
        # (and needs no boolean temporary).
        np.sign(out, out=buf)
        buf *= g
    elif act == "tanh":
        np.multiply(out, out, out=buf)
        np.subtract(1.0, buf, out=buf)
        buf *= g
    elif act == "sigmoid":
        np.subtract(1.0, out, out=buf)
        buf *= out
        buf *= g
    elif act == "softplus":
        # d softplus(z) = sigmoid(z) = 1 - exp(-out) (out >= 0 always).
        np.negative(out, out=buf)
        np.exp(buf, out=buf)
        np.subtract(1.0, buf, out=buf)
        buf *= g
    else:
        raise ValueError(f"unknown activation {act!r}")
    return buf


def mlp_chain_forward_raw(h, steps, out_act=None, save=True, alloc=None):
    """Array-level MLP-chain forward.

    ``h`` is a plain array; returns ``(out, saved)`` where ``saved``
    feeds :func:`mlp_chain_backward_raw` (``None`` when ``save`` is
    false, e.g. under ``no_grad``).  This is the computational core of
    :func:`mlp_chain`, exposed so larger fused ops (the level-fused
    propagation kernel) can run MLPs without creating tape nodes.

    ``alloc`` optionally supplies every layer buffer from a
    :class:`repro.nn.arena.TapeArena`; the caller then owns the saved
    arrays and the output and must release them (the fused propagation
    backward does, level by level).
    """
    alloc = NULL_ARENA if alloc is None else alloc
    inputs, outputs = [], []
    owned = None                 # previous layer's buffer when not saving
    dt = np.result_type(h, steps[0][0].data) if steps else h.dtype
    rows = h.shape[0]
    for w, b, act in steps:
        if act not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {act!r}")
        if save:
            inputs.append(h)
        z = alloc.take((rows, w.data.shape[1]), dt)
        _threads.matmul(h, w.data, out=z)
        if b is not None:
            z += b.data
        if owned is not None:
            alloc.release(owned)
        h = _apply_act_inplace(z, act, alloc)
        if save:
            outputs.append(h)
        else:
            owned = h
    if out_act is not None and save:
        # Backward needs both the pre-out_act activation (outputs[-1])
        # and the final output, so they are distinct buffers.
        out = alloc.take(h.shape, h.dtype)
        out[...] = h
        out = _apply_act_inplace(out, out_act, alloc)
    elif out_act is not None:
        out = _apply_act_inplace(h, out_act, alloc)
    else:
        out = h
    return out, ((inputs, outputs, out) if save else None)


def mlp_chain_backward_raw(g, steps, saved, out_act=None, alloc=None):
    """Array-level MLP-chain backward: accumulates parameter gradients
    in place and returns the gradient w.r.t. the chain's input.

    Parameter gradients are always freshly allocated (they are adopted
    by the parameter tensors and outlive the pass); with ``alloc``, the
    inter-layer gradient scratch is arena-recycled and the *returned*
    array is arena-owned — the caller must release it after use
    (chains always have at least one layer, so it is never the caller's
    own ``g``).
    """
    alloc = NULL_ARENA if alloc is None else alloc
    inputs, outputs, out = saved
    owned = None                 # the arena buffer g currently aliases
    if out_act is not None:
        g = _act_grad_alloc(g, out, out_act, alloc)
        owned = g
    dt = np.result_type(g, steps[0][0].data) if steps else g.dtype
    rows = g.shape[0]
    for inp, layer_out, (w, b, act) in zip(reversed(inputs),
                                           reversed(outputs),
                                           reversed(steps)):
        if act is None:
            gz, gz_owned = g, owned
        else:
            gz = _act_grad_alloc(g, layer_out, act, alloc)
            if owned is not None:
                alloc.release(owned)
            gz_owned = gz
        # Parameter gradients escape the pass, so the first
        # accumulation adopts a fresh array; once a parameter has a
        # gradient buffer (the propagation MLPs accumulate once per
        # level), later contributions add through arena scratch.
        if w.requires_grad:
            if w.grad is None:
                w._accumulate(_threads.matmul(inp.T, gz), own=True)
            else:
                tmp = alloc.take(w.data.shape, dt)
                _threads.matmul(inp.T, gz, out=tmp)
                w.grad += tmp
                alloc.release(tmp)
        if b is not None and b.requires_grad:
            if b.grad is None:
                b._accumulate(gz.sum(axis=0), own=True)
            else:
                tmp = alloc.take(b.data.shape, dt)
                np.add.reduce(gz, axis=0, out=tmp)
                b.grad += tmp
                alloc.release(tmp)
        g = alloc.take((rows, w.data.shape[0]), dt)
        _threads.matmul(gz, w.data.T, out=g)
        if gz_owned is not None:
            alloc.release(gz_owned)
        owned = g
    return g


def mlp_chain(x, steps, out_act=None):
    """A whole MLP — ``act(x @ W1 + b1) ... @ Wk + bk`` — as ONE tape node.

    ``steps`` is a list of ``(weight, bias, activation)`` triples with
    ``bias`` an optional Tensor and ``activation`` in ``(None, "relu",
    "tanh")``; ``out_act`` optionally applies one more activation
    (``tanh``/``softplus``/``sigmoid``/``relu``) to the final layer's
    output, folding the ubiquitous ``mlp(x).tanh()`` pattern into the
    same node.  Numerically identical to chaining :func:`affine_act`
    per step plus a ``Tensor`` activation, but the intermediates never
    become tape nodes: one closure backpropagates the full chain, which
    removes the per-layer Tensor/closure/gradient-copy overhead that
    dominates the many small per-level MLP calls of the propagation
    model.
    """
    if out_act not in _CHAIN_ACTS:
        raise ValueError(f"unknown activation {out_act!r}")
    out, saved = mlp_chain_forward_raw(x.data, steps, out_act=out_act)

    def backward(g):
        gx = mlp_chain_backward_raw(g, steps, saved, out_act=out_act)
        if x.requires_grad:
            x._accumulate(gx, own=len(steps) > 0 or out_act is not None)

    parents = [x]
    for w, b, _act in steps:
        parents.append(w)
        if b is not None:
            parents.append(b)
    return Tensor._make(out, tuple(parents), backward)


def gather_concat(tensors, indices, schedules=None):
    """Fused ``concat([t[i] for t, i in zip(tensors, indices)], axis=1)``.

    ``indices[k]`` may be ``None`` when ``tensors[k]`` is already row
    aligned (e.g. per-edge features).  One output allocation, one
    backward closure; optional per-part :class:`SegmentSchedule`\\ s
    accelerate the duplicate-index gradient scatter.
    """
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    if len(indices) != len(tensors):
        raise ValueError("gather_concat: len(indices) != len(tensors)")
    if schedules is None:
        schedules = [None] * len(tensors)
    idxs = [None if i is None else np.asarray(i, dtype=np.int64)
            for i in indices]
    rows = None
    for t, i in zip(tensors, idxs):
        r = len(t.data) if i is None else len(i)
        if rows is None:
            rows = r
        elif r != rows:
            raise ValueError("gather_concat: inconsistent row counts")
    widths = [t.data.shape[1] for t in tensors]
    offsets = np.cumsum([0] + widths)
    out = np.empty((rows, int(offsets[-1])),
                   dtype=np.result_type(*(t.data for t in tensors)))
    for t, i, lo, hi in zip(tensors, idxs, offsets[:-1], offsets[1:]):
        if i is None:
            out[:, lo:hi] = t.data
        else:
            np.take(t.data, i, axis=0, out=out[:, lo:hi])

    def backward(g):
        for t, i, sched, lo, hi in zip(tensors, idxs, schedules,
                                       offsets[:-1], offsets[1:]):
            if not t.requires_grad:
                continue
            gs = g[:, lo:hi]
            if i is None:
                t._accumulate(gs)
            else:
                full = np.zeros_like(t.data)
                scatter_add_rows(full, i, gs, schedule=sched)
                t._accumulate(full, own=True)

    return Tensor._make(out, tuple(tensors), backward)


def gather_concat_raw(arrays, indices, alloc=None):
    """Array-level gather-then-concat along axis 1 (single allocation).

    ``indices[k]`` indexes rows of ``arrays[k]`` (``None`` = already
    row-aligned).  The assembly core of :func:`gather_concat`, shared
    with the level-fused propagation kernel.  With ``alloc``, the
    output buffer is arena-recycled (caller owns and releases it).
    """
    alloc = NULL_ARENA if alloc is None else alloc
    rows = None
    for arr, idx in zip(arrays, indices):
        r = len(arr) if idx is None else len(idx)
        if rows is None:
            rows = r
        elif r != rows:
            raise ValueError("gather_concat_raw: inconsistent row counts")
    total = 0
    for arr in arrays:
        total += arr.shape[1]
    out = alloc.take((rows, total), np.result_type(*arrays))
    lo = 0
    for arr, idx in zip(arrays, indices):
        hi = lo + arr.shape[1]
        if idx is None:
            out[:, lo:hi] = arr
        else:
            arr.take(idx, axis=0, out=out[:, lo:hi])
        lo = hi
    return out


def gather_rows_csr(t, index, schedule=None):
    """``t[index]`` whose gradient scatter uses the CSR schedule."""
    index = np.asarray(index, dtype=np.int64)
    a = t

    def backward(g):
        if a.requires_grad:
            full = np.zeros_like(a.data)
            scatter_add_rows(full, index, g, schedule=schedule)
            a._accumulate(full, own=True)

    return Tensor._make(a.data[index], (a,), backward)


# -- CSR segment reductions ---------------------------------------------------

def segment_sum_csr(t, segment_ids, num_segments, schedule=None):
    """Sorted-``reduceat`` segment sum (fused counterpart of
    :func:`repro.nn.ops.segment_sum`)."""
    sched = _schedule_for(segment_ids, schedule)
    a = t
    out = segment_extrema_raw(a.data, sched, num_segments, np.add)

    def backward(g):
        if a.requires_grad:
            a._accumulate(g[sched.ids], own=True)

    return Tensor._make(out, (a,), backward)


def segment_extrema_raw(data, sched, num_segments, ufunc, alloc=None):
    """One ``ufunc.reduceat`` pass; empty segments yield 0 (as naive).

    With ``alloc``, the output and reduction scratch are arena-recycled
    (the caller owns the returned buffer).
    """
    alloc = NULL_ARENA if alloc is None else alloc
    out = alloc.take((num_segments,) + data.shape[1:], data.dtype,
                     zero=True)
    if len(sched.starts):
        reduced = alloc.take((len(sched.starts),) + data.shape[1:],
                             data.dtype)
        _threads.segment_reduce(ufunc, data, sched.order, sched.starts,
                                out=reduced, alloc=alloc)
        out[sched.present] = reduced
        alloc.release(reduced)
    return out


def _extrema_backward(a, sched, out):
    """Tie-splitting gradient for a segment max/min, CSR-accelerated."""
    mask = (a.data == out[sched.ids]).astype(a.data.dtype)
    counts = np.zeros_like(out)
    scatter_add_rows(counts, sched.ids, mask, schedule=sched)

    def backward(g):
        if a.requires_grad:
            denom = np.maximum(counts, 1.0)
            a._accumulate(mask * (g / denom)[sched.ids], own=True)

    return backward


def segment_max_csr(t, segment_ids, num_segments, schedule=None):
    """Sorted-``reduceat`` segment max (empty segments yield zeros)."""
    sched = _schedule_for(segment_ids, schedule)
    a = t
    out = segment_extrema_raw(a.data, sched, num_segments, np.maximum)
    return Tensor._make(out, (a,), _extrema_backward(a, sched, out))


def segment_minmax_csr(t, segment_ids, num_segments, schedule=None):
    """One-pass segment (max, min): one sort, two ``reduceat`` sweeps.

    Returns ``(max_tensor, min_tensor)``.  Matches the naive
    ``segment_max(t)`` / ``-segment_max(-t)`` pair, including the
    empty-segment-yields-zero convention and tie-splitting gradients.
    """
    sched = _schedule_for(segment_ids, schedule)
    a = t
    out_max = segment_extrema_raw(a.data, sched, num_segments, np.maximum)
    out_min = segment_extrema_raw(a.data, sched, num_segments, np.minimum)
    t_max = Tensor._make(out_max, (a,), _extrema_backward(a, sched, out_max))
    t_min = Tensor._make(out_min, (a,), _extrema_backward(a, sched, out_min))
    return t_max, t_min


def gather_add_csr(t, index, addend, schedule=None):
    """Fused ``t[index] + addend`` (one tape node, CSR gradient scatter).

    The arrival-update pattern of the propagation model: gather the
    source arrivals along the level's edges and add the per-edge
    increment.
    """
    index = np.asarray(index, dtype=np.int64)
    a, b = t, addend

    def backward(g):
        if a.requires_grad:
            full = np.zeros_like(a.data)
            scatter_add_rows(full, index, g, schedule=schedule)
            a._accumulate(full, own=True)
        if b.requires_grad:
            b._accumulate(g)

    return Tensor._make(a.data[index] + b.data, (a, b), backward)


def lut_kron_combine_csr(ax, ay, values, valid):
    """Fused Kronecker LUT combination, one tape node.

    Computes ``((ax (x) ay) . values).sum`` per (edge, table) row and
    masks invalid tables — i.e. the naive
    ``(batched_outer(ax, ay) * values).sum(axis=1).reshape(e, 8) * valid``
    — without ever materialising the (E*8, 49) coefficient matrix:
    per row, ``out = ax . (V @ ay)`` where ``V`` is the (7, 7) table.
    ``values`` (E*8, 49) and ``valid`` (E, 8) are plain arrays (graph
    data, no gradient).  Summation order differs from the naive path
    (rows then columns instead of the flattened 49-term sum), which is
    within the fused==naive floating-point tolerance.
    """
    e = len(valid)
    v3 = values.reshape(-1, 7, 7)
    # (E*8, 7): one V @ ay per row, batched.
    vy = np.matmul(v3, ay.data[:, :, None])[:, :, 0]
    flat = np.einsum("ij,ij->i", ax.data, vy)
    out = flat.reshape(e, 8) * valid

    def backward(g):
        gv = (g * valid).reshape(-1, 1)
        if ax.requires_grad:
            ax._accumulate(vy * gv, own=True)
        if ay.requires_grad:
            # (E*8, 7): one V.T @ ax per row.
            vx = np.matmul(ax.data[:, None, :], v3)[:, 0, :]
            ay._accumulate(vx * gv, own=True)

    return Tensor._make(out, (ax, ay), backward)


def segment_minmax_gate_csr(t, segment_ids, num_segments, gate_logits,
                            schedule=None):
    """Fused late/early fanin aggregation: ``max*g + min*(1-g)`` with
    ``g = sigmoid(gate_logits)``, as one tape node.

    Matches the naive composition (``segment_minmax`` + sigmoid gate
    mixing) including tie-splitting extrema gradients and the
    empty-segment-yields-zero convention.
    """
    sched = _schedule_for(segment_ids, schedule)
    a, gl = t, gate_logits
    out_max = segment_extrema_raw(a.data, sched, num_segments, np.maximum)
    out_min = segment_extrema_raw(a.data, sched, num_segments, np.minimum)
    gate = 1.0 / (1.0 + np.exp(-np.clip(gl.data, -60, 60)))
    out = out_max * gate + out_min * (1.0 - gate)

    mask_max = (a.data == out_max[sched.ids]).astype(a.data.dtype)
    counts_max = np.zeros_like(out_max)
    scatter_add_rows(counts_max, sched.ids, mask_max, schedule=sched)
    mask_min = (a.data == out_min[sched.ids]).astype(a.data.dtype)
    counts_min = np.zeros_like(out_min)
    scatter_add_rows(counts_min, sched.ids, mask_min, schedule=sched)

    def backward(g):
        if a.requires_grad:
            g_max = (g * gate) / np.maximum(counts_max, 1.0)
            g_min = (g * (1.0 - gate)) / np.maximum(counts_min, 1.0)
            ga = mask_max * g_max[sched.ids]
            ga += mask_min * g_min[sched.ids]
            a._accumulate(ga, own=True)
        if gl.requires_grad:
            gg = (g * (out_max - out_min)).sum(axis=0)
            gg *= gate * (1.0 - gate)
            gl._accumulate(gg.reshape(gl.data.shape), own=True)

    return Tensor._make(out, (a, gl), backward)
