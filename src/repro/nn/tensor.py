"""Reverse-mode automatic differentiation on numpy arrays.

This is the computational substrate for every neural model in the
reproduction (the paper used PyTorch + DGL, neither of which is available
here).  The design is a classic dynamic tape: each :class:`Tensor` records
the tensors it was computed from and a closure that accumulates gradients
into them.  ``backward()`` runs the closures in reverse topological order.

Only the operations required by the paper's models are implemented, but
each is implemented completely (full broadcasting, correct gradients) and
is property-tested against numerical differentiation in
``tests/test_nn_autograd.py``.
"""

from __future__ import annotations

import threading

import numpy as np

from . import arena as _arena
from .dtype import active_dtype

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]


class _GradState(threading.local):
    """Per-thread grad-enabled stack.

    Thread-local so a serving thread running inference under
    ``no_grad()`` cannot turn gradients off under a concurrently
    training thread (and vice versa).
    """

    def __init__(self):
        self.stack = [True]


_GRAD_STATE = _GradState()


class no_grad:
    """Context manager that disables gradient recording (for inference)."""

    def __enter__(self):
        _GRAD_STATE.stack.append(False)
        return self

    def __exit__(self, exc_type, exc, tb):
        _GRAD_STATE.stack.pop()
        return False


def is_grad_enabled():
    """Return True when operations should be recorded on the tape."""
    return _GRAD_STATE.stack[-1]


def _unbroadcast(grad, shape):
    """Reduce ``grad`` so its shape matches the pre-broadcast ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum out prepended broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value):
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got Tensor")
    return np.asarray(value, dtype=active_dtype())


# Installed by repro.obs.profile while a profiler is active: a callable
# that wraps each new tape node's backward closure with per-op timing.
# None (the default) keeps tape construction on the zero-overhead path.
_TAPE_PROFILE_HOOK = None


def _set_tape_profile_hook(hook):
    global _TAPE_PROFILE_HOOK
    _TAPE_PROFILE_HOOK = hook


class Tensor:
    """A numpy array with an optional gradient and autograd history."""

    # __weakref__ so arena episode leases can attach a recovery
    # finalizer to a fused op's root node (repro.models.propagation).
    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "__weakref__")

    def __init__(self, data, requires_grad=False):
        self.data = _as_array(data)
        self.grad = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward = None
        self._parents = ()

    # -- basic introspection ------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    def numpy(self):
        """Return the underlying array (shared, do not mutate)."""
        return self.data

    def item(self):
        return float(self.data)

    def detach(self):
        """Return a view of the data cut off from the autograd tape."""
        return Tensor(self.data)

    # -- graph construction helpers ------------------------------------------
    @staticmethod
    def _make(data, parents, backward):
        out = Tensor(data)
        parents = tuple(p for p in parents if isinstance(p, Tensor))
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            hook = _TAPE_PROFILE_HOOK
            out._backward = backward if hook is None else hook(backward)
        return out

    def _accumulate(self, grad, own=False):
        if self.grad is None:
            # ``own=True`` asserts the caller hands over a freshly
            # allocated array that aliases no other buffer, so it can be
            # adopted without the defensive copy (later accumulations
            # add into it in place).
            if own and grad.shape == self.data.shape \
                    and grad.dtype == self.data.dtype:
                self.grad = grad
                return
            # Copy: the incoming gradient may be a view into another
            # tensor's buffer, and later accumulations add in place.
            # The destination buffer comes from the gradient pool when
            # a matching one was freed by an earlier backward(free=True).
            buf = _arena.grad_buffer(self.data.shape, self.data.dtype)
            np.copyto(buf, grad, casting="unsafe")
            self.grad = buf
        else:
            self.grad += grad

    def backward(self, grad=None, free=False):
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (so scalars need no argument).

        With ``free=True``, each interior node's closure, parent links
        and accumulated gradient are released as soon as its backward
        step has run, so the tape's forward intermediates become
        collectable immediately instead of living until the loss tensor
        goes out of scope — this caps peak memory across the per-design
        iterations of a training epoch.  Freed interior gradient
        buffers go back to the :mod:`repro.nn.arena` gradient pool for
        the next pass.  Leaf tensors (parameters) keep their gradients;
        a freed graph cannot be backpropagated again.
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
        topo, seen = [], set()

        def visit(node):
            stack = [(node, False)]
            while stack:
                cur, done = stack.pop()
                if done:
                    topo.append(cur)
                    continue
                if id(cur) in seen or not cur.requires_grad:
                    continue
                seen.add(id(cur))
                stack.append((cur, True))
                for p in cur._parents:
                    stack.append((p, False))

        visit(self)
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
            if free and node._backward is not None:
                node._backward = None
                node._parents = ()
                # Return the interior gradient buffer to the pool
                # explicitly (refcount-guarded inside give_grad) so the
                # next pass's accumulations recycle it instead of
                # waiting for the allocator to reclaim lazily.
                g = node.grad
                node.grad = None
                if g is not None:
                    _arena.give_grad(g)

    def zero_grad(self):
        self.grad = None

    # -- arithmetic -----------------------------------------------------------
    @staticmethod
    def _coerce(other):
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other):
        other = Tensor._coerce(other)
        a, b = self, other

        def backward(g):
            if a.requires_grad:
                a._accumulate(_unbroadcast(g, a.data.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(g, b.data.shape))

        return Tensor._make(a.data + b.data, (a, b), backward)

    __radd__ = __add__

    def __neg__(self):
        a = self

        def backward(g):
            if a.requires_grad:
                a._accumulate(-g)

        return Tensor._make(-a.data, (a,), backward)

    def __sub__(self, other):
        return self + (-Tensor._coerce(other))

    def __rsub__(self, other):
        return Tensor._coerce(other) + (-self)

    def __mul__(self, other):
        other = Tensor._coerce(other)
        a, b = self, other

        def backward(g):
            if a.requires_grad:
                a._accumulate(_unbroadcast(g * b.data, a.data.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(g * a.data, b.data.shape))

        return Tensor._make(a.data * b.data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = Tensor._coerce(other)
        a, b = self, other

        def backward(g):
            if a.requires_grad:
                a._accumulate(_unbroadcast(g / b.data, a.data.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(-g * a.data / (b.data ** 2), b.data.shape))

        return Tensor._make(a.data / b.data, (a, b), backward)

    def __rtruediv__(self, other):
        return Tensor._coerce(other) / self

    def __pow__(self, exponent):
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        a = self

        def backward(g):
            if a.requires_grad:
                a._accumulate(g * exponent * a.data ** (exponent - 1))

        return Tensor._make(a.data ** exponent, (a,), backward)

    def __matmul__(self, other):
        other = Tensor._coerce(other)
        a, b = self, other
        if a.data.ndim != 2 or b.data.ndim != 2:
            raise ValueError("matmul supports 2-D tensors only")

        def backward(g):
            if a.requires_grad:
                a._accumulate(g @ b.data.T)
            if b.requires_grad:
                b._accumulate(a.data.T @ g)

        return Tensor._make(a.data @ b.data, (a, b), backward)

    def affine(self, weight, bias=None):
        """Fused ``x @ W + b`` (one tape node; the hot path of every MLP)."""
        a, w = self, weight
        out = a.data @ w.data
        if bias is not None:
            out = out + bias.data

        def backward(g):
            if a.requires_grad:
                a._accumulate(g @ w.data.T)
            if w.requires_grad:
                w._accumulate(a.data.T @ g)
            if bias is not None and bias.requires_grad:
                bias._accumulate(g.sum(axis=0))

        parents = (a, w) if bias is None else (a, w, bias)
        return Tensor._make(out, parents, backward)

    # -- shape ops --------------------------------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        old = a.data.shape

        def backward(g):
            if a.requires_grad:
                a._accumulate(g.reshape(old))

        return Tensor._make(a.data.reshape(shape), (a,), backward)

    def transpose(self):
        a = self

        def backward(g):
            if a.requires_grad:
                a._accumulate(g.T)

        return Tensor._make(a.data.T, (a,), backward)

    @property
    def T(self):
        return self.transpose()

    def __getitem__(self, key):
        a = self

        def backward(g):
            if a.requires_grad:
                full = np.zeros_like(a.data)
                np.add.at(full, key, g)
                a._accumulate(full)

        return Tensor._make(a.data[key], (a,), backward)

    # -- reductions --------------------------------------------------------------
    def sum(self, axis=None, keepdims=False):
        a = self

        def backward(g):
            if not a.requires_grad:
                return
            if axis is None:
                a._accumulate(np.broadcast_to(g, a.data.shape).copy())
                return
            if not keepdims:
                g = np.expand_dims(g, axis)
            a._accumulate(np.broadcast_to(g, a.data.shape).copy())

        return Tensor._make(a.data.sum(axis=axis, keepdims=keepdims), (a,), backward)

    def mean(self, axis=None, keepdims=False):
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis, keepdims=False):
        a = self
        out = a.data.max(axis=axis, keepdims=True)
        mask = a.data == out

        def backward(g):
            if not a.requires_grad:
                return
            if not keepdims:
                g = np.expand_dims(g, axis)
            counts = mask.sum(axis=axis, keepdims=True)
            a._accumulate(mask * g / counts)

        data = out if keepdims else np.squeeze(out, axis=axis)
        return Tensor._make(data, (a,), backward)

    # -- elementwise nonlinearities ----------------------------------------------
    def relu(self):
        a = self
        mask = a.data > 0

        def backward(g):
            if a.requires_grad:
                a._accumulate(g * mask)

        return Tensor._make(a.data * mask, (a,), backward)

    def leaky_relu(self, slope=0.01):
        a = self
        mask = a.data > 0

        def backward(g):
            if a.requires_grad:
                a._accumulate(g * np.where(mask, 1.0, slope))

        return Tensor._make(np.where(mask, a.data, slope * a.data), (a,), backward)

    def sigmoid(self):
        a = self
        out = 1.0 / (1.0 + np.exp(-np.clip(a.data, -60, 60)))

        def backward(g):
            if a.requires_grad:
                a._accumulate(g * out * (1.0 - out))

        return Tensor._make(out, (a,), backward)

    def tanh(self):
        a = self
        out = np.tanh(a.data)

        def backward(g):
            if a.requires_grad:
                a._accumulate(g * (1.0 - out ** 2))

        return Tensor._make(out, (a,), backward)

    def exp(self):
        a = self
        out = np.exp(np.clip(a.data, -60, 60))

        def backward(g):
            if a.requires_grad:
                a._accumulate(g * out)

        return Tensor._make(out, (a,), backward)

    def log(self):
        a = self

        def backward(g):
            if a.requires_grad:
                a._accumulate(g / a.data)

        return Tensor._make(np.log(a.data), (a,), backward)

    def sqrt(self):
        a = self
        out = np.sqrt(a.data)

        def backward(g):
            if a.requires_grad:
                a._accumulate(g * 0.5 / np.maximum(out, 1e-12))

        return Tensor._make(out, (a,), backward)

    def softplus(self):
        a = self
        x = np.clip(a.data, -60, 60)
        out = np.log1p(np.exp(-np.abs(x))) + np.maximum(x, 0)

        def backward(g):
            if a.requires_grad:
                a._accumulate(g / (1.0 + np.exp(-x)))

        return Tensor._make(out, (a,), backward)

    def softmax(self, axis=-1):
        a = self
        shifted = a.data - a.data.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        out = e / e.sum(axis=axis, keepdims=True)

        def backward(g):
            if a.requires_grad:
                dot = (g * out).sum(axis=axis, keepdims=True)
                a._accumulate(out * (g - dot))

        return Tensor._make(out, (a,), backward)
