"""Tape arena allocator: planned buffer reuse for fused execution.

The fused propagation schedule is static per graph: every forward pass
of :func:`repro.models.propagation._fused_propagate` takes buffers of
exactly the same shapes in exactly the same order, and every backward
sweep releases them level by level.  A :class:`TapeArena` exploits that
— it is a shape-keyed recycling allocator cached on the graph's
:class:`~repro.graphdata.hetero.LevelSchedule` (so it is invalidated
together with the CSR schedules on a graph-version bump, keeping the
delta path correct).  The first pass through a graph allocates fresh
("plans" the arena by observation); every steady-state pass after that
runs with **zero** fresh tape allocations — ``take`` pops a recycled
buffer, explicit ``release`` calls at the points where the schedule
proves a buffer dead return it.

Safety rules (enforced or by construction):

* a buffer is never handed out twice while live — ``release`` raises on
  double-release and on foreign arrays (the aliasing regression tests
  pin this);
* one *episode* (forward + backward of one tape) holds the arena
  exclusively: ``begin()`` returns ``None`` when the arena is busy and
  the caller falls back to plain numpy allocation (concurrent serving
  threads stay correct, just unplanned); ``end(token)`` is idempotent,
  so an abandoned tape (never backpropagated) recovers the lease via a
  ``weakref.finalize`` on its root node — the buffers it held are
  simply lost to the garbage collector and re-planned next pass;
* buffers that escape the mega-op as tensor ``data`` or adopted
  gradients (``hp``/``atb`` outputs, parameter gradients, the
  ``h_emb`` gradient) are **never** arena slots — only intermediates
  whose last read is inside the fused forward/backward are.

Re-backpropagating a *non-freed* fused tape after a newer forward has
run on the same (graph, mode) arena is undefined — the newer pass may
have recycled the saved buffers.  Training and serving never do this
(``backward(free=True)`` everywhere); the differential tests cover the
one-tape-at-a-time contract.

The module also owns the **gradient pool** used by
``Tensor.backward(free=True)``: interior gradient buffers are returned
to a per-thread pool as each tape node is freed (guarded by a refcount
check so a buffer someone else still references is never pooled), and
``grad_buffer`` hands them back out for the next pass's gradient
accumulations — holding steady-state training's allocation count flat
across epochs.
"""

from __future__ import annotations

import os
import sys
import threading

import numpy as np

__all__ = ["TapeArena", "arena_enabled", "use_arena", "grad_buffer",
           "give_grad", "grad_pool_stats", "clear_grad_pool"]


_DEFAULT_ENABLED = os.environ.get("REPRO_ARENA", "1").strip() not in (
    "0", "false", "off")


class _ArenaState(threading.local):
    """Per-thread arena-enabled override stack."""

    def __init__(self):
        self.stack = []


_STATE = _ArenaState()


def arena_enabled():
    """True when fused execution should lease graph arenas."""
    return _STATE.stack[-1] if _STATE.stack else _DEFAULT_ENABLED


class use_arena:
    """Context manager toggling arena-planned execution per thread.

    ``use_arena(False)`` forces unplanned (fresh-allocation) fused
    execution — the reference the bit-identity property tests compare
    planned execution against.
    """

    def __init__(self, enabled=True):
        self.enabled = bool(enabled)

    def __enter__(self):
        _STATE.stack.append(self.enabled)
        return self

    def __exit__(self, exc_type, exc, tb):
        _STATE.stack.pop()
        return False


class TapeArena:
    """Shape-keyed recycling allocator for one (graph, stage) plan."""

    __slots__ = ("tag", "_free", "_live", "_lock", "_busy", "_episode",
                 "fresh_allocs", "takes", "reuses")

    def __init__(self, tag=""):
        self.tag = tag
        self._free = {}          # (shape, dtype_str) -> [ndarray, ...]
        self._live = set()       # id() of every handed-out buffer
        self._lock = threading.Lock()
        self._busy = False
        self._episode = 0
        self.fresh_allocs = 0
        self.takes = 0
        self.reuses = 0

    # -- episode lease -----------------------------------------------------
    def begin(self):
        """Lease the arena for one forward(+backward) episode.

        Returns an opaque token for :meth:`end`, or ``None`` when the
        arena is already leased (the caller must then allocate fresh).
        """
        with self._lock:
            if self._busy:
                return None
            self._busy = True
            self._episode += 1
            # Any ids still live belong to an abandoned episode (its
            # tape died unreleased) — those arrays are garbage by now,
            # and a stale id could collide with a future allocation's.
            self._live.clear()
            return self._episode

    def end(self, token):
        """Release the lease. Idempotent per token (finalizers re-call)."""
        with self._lock:
            if self._busy and token == self._episode:
                self._busy = False

    # -- allocation --------------------------------------------------------
    #
    # take/release are deliberately lock-free: the episode lease
    # (begin/end, which ARE locked) guarantees at most one thread runs
    # inside an episode, and these sit on the per-buffer hot path.

    def take(self, shape, dtype, zero=False):
        """A buffer of ``(shape, dtype)`` — recycled when the plan has
        one free, freshly allocated (and counted) otherwise."""
        shape = tuple(shape)
        if not isinstance(dtype, np.dtype):
            dtype = np.dtype(dtype)
        key = (shape, dtype)
        stack = self._free.get(key)
        if stack:
            buf = stack.pop()
            self.reuses += 1
        else:
            buf = np.empty(shape, dtype=dtype)
            self.fresh_allocs += 1
        self.takes += 1
        self._live.add(id(buf))
        if zero:
            buf[...] = 0
        return buf

    def release(self, arr):
        """Return a buffer taken from this arena to its free list.

        Raises on double-release and on arrays the arena never handed
        out — aliasing a live tensor with a recycled slot is the one
        unrecoverable arena bug, so it fails loudly.
        """
        live = self._live
        if id(arr) not in live:
            raise ValueError(
                f"arena[{self.tag}]: release of a buffer that is not "
                f"live here (double release or foreign array)")
        live.remove(id(arr))
        self._free.setdefault((arr.shape, arr.dtype), []).append(arr)

    def release_all(self, arrays):
        for arr in arrays:
            self.release(arr)

    # -- introspection -----------------------------------------------------
    def stats(self):
        with self._lock:
            pooled = sum(len(v) for v in self._free.values())
            pooled_bytes = sum(a.nbytes for v in self._free.values()
                               for a in v)
            return {"tag": self.tag, "fresh_allocs": self.fresh_allocs,
                    "takes": self.takes, "reuses": self.reuses,
                    "live": len(self._live), "pooled": pooled,
                    "pooled_bytes": pooled_bytes}


class _NullArena:
    """Allocation shim with the TapeArena take/release surface but no
    recycling — what fused execution uses when the arena is disabled,
    busy, or not yet built.  ``release`` is a no-op (the garbage
    collector reclaims), so call sites stay branch-free."""

    __slots__ = ()

    def take(self, shape, dtype, zero=False):
        if zero:
            return np.zeros(shape, dtype=dtype)
        return np.empty(shape, dtype=dtype)

    def release(self, arr):
        pass

    def release_all(self, arrays):
        pass


NULL_ARENA = _NullArena()


# -- gradient pool ------------------------------------------------------------
#
# ``Tensor.backward(free=True)`` returns interior gradient buffers here
# as it frees each node; gradient accumulations take them back out.
# Thread-local: gradients never cross threads, and a lock-free pool
# keeps the hot path cheap.

_POOL_PER_KEY = 8


class _GradPool(threading.local):
    def __init__(self):
        self.free = {}           # (shape, dtype_str) -> [ndarray, ...]
        self.given = 0
        self.rejected = 0
        self.hits = 0
        self.misses = 0


_GRAD_POOL = _GradPool()

# getrefcount(arr) when the caller's local is the ONLY outside reference:
# caller local + our parameter + getrefcount's own argument slot.
_SOLE_OWNER_REFS = 3


def give_grad(arr):
    """Offer a dead gradient buffer to the pool.

    Only accepts float arrays whose sole remaining reference is the
    caller's local (refcount check) — a buffer that escaped into any
    other structure is left to the garbage collector instead of being
    recycled under a live alias.  Returns True when pooled.
    """
    pool = _GRAD_POOL
    if (not isinstance(arr, np.ndarray) or arr.base is not None
            or arr.dtype.kind != "f"
            or sys.getrefcount(arr) != _SOLE_OWNER_REFS):
        pool.rejected += 1
        return False
    key = (arr.shape, arr.dtype.str)
    stack = pool.free.setdefault(key, [])
    if len(stack) >= _POOL_PER_KEY:
        pool.rejected += 1
        return False
    stack.append(arr)
    pool.given += 1
    return True


def grad_buffer(shape, dtype, zero=False):
    """A gradient-accumulation buffer, recycled from the pool when one
    of the right (shape, dtype) is free."""
    pool = _GRAD_POOL
    key = (tuple(shape), np.dtype(dtype).str)
    stack = pool.free.get(key)
    if stack:
        buf = stack.pop()
        pool.hits += 1
        if zero:
            buf[...] = 0
        return buf
    pool.misses += 1
    if zero:
        return np.zeros(shape, dtype=dtype)
    return np.empty(shape, dtype=dtype)


def grad_pool_stats():
    pool = _GRAD_POOL
    return {"given": pool.given, "rejected": pool.rejected,
            "hits": pool.hits, "misses": pool.misses,
            "pooled": sum(len(v) for v in pool.free.values())}


def clear_grad_pool():
    _GRAD_POOL.free.clear()
