"""Multicore compute: the ``REPRO_COMPUTE_THREADS`` switch.

Numpy releases the GIL inside BLAS calls and ufunc inner loops, so the
hot kernels — the MLP-chain matmuls and the CSR ``reduceat`` segment
reductions — can be chunked across a persistent thread pool:

* segment reductions split at *segment boundaries* — every segment is
  still reduced by one thread, in the same sorted element order, so
  they are **bit-identical** to the serial sweep by construction;
* matmuls split along *output rows* — mathematically identical, but the
  BLAS may block a chunk's within-row accumulation differently than the
  full call's, so equality holds to the dtype contract tolerance
  (:func:`repro.nn.contract_tol`) rather than bitwise.

Levels themselves stay sequential (level L reads the states level L-1
wrote — that data dependence is the whole point of levelized
propagation), so the parallelism lives inside each level's bulk ops.

Threading only engages above ``REPRO_COMPUTE_MIN_ROWS`` rows (default
8192) so the many small per-level launches of little designs don't pay
pool overhead; ``REPRO_COMPUTE_THREADS=1`` (the default) keeps the
whole module on the plain serial path.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from .arena import NULL_ARENA

__all__ = ["thread_count", "min_parallel_rows", "use_threads",
           "parallel_enabled", "matmul", "segment_reduce"]


def _env_int(name, default):
    raw = os.environ.get(name, "").strip()
    try:
        return int(raw) if raw else default
    except ValueError:
        return default


_DEFAULT_THREADS = max(1, _env_int("REPRO_COMPUTE_THREADS", 1))
_DEFAULT_MIN_ROWS = max(1, _env_int("REPRO_COMPUTE_MIN_ROWS", 8192))


class _ThreadState(threading.local):
    """Per-thread (threads, min_rows) override stack."""

    def __init__(self):
        self.stack = []


_STATE = _ThreadState()

_pool = None
_pool_size = 0
_pool_lock = threading.Lock()


def thread_count():
    """Worker threads the compute kernels may use (>= 1)."""
    if _STATE.stack:
        return _STATE.stack[-1][0]
    return _DEFAULT_THREADS


def min_parallel_rows():
    """Row threshold below which kernels stay serial."""
    if _STATE.stack:
        return _STATE.stack[-1][1]
    return _DEFAULT_MIN_ROWS


class use_threads:
    """Context manager selecting the compute-thread budget per thread.

    ``min_rows`` optionally overrides the engagement threshold (tests
    set it to 1 to force the chunked paths on tiny inputs).
    """

    def __init__(self, threads, min_rows=None):
        self.threads = max(1, int(threads))
        self.min_rows = (max(1, int(min_rows)) if min_rows is not None
                         else _DEFAULT_MIN_ROWS)

    def __enter__(self):
        _STATE.stack.append((self.threads, self.min_rows))
        return self

    def __exit__(self, exc_type, exc, tb):
        _STATE.stack.pop()
        return False


def parallel_enabled(rows):
    """True when ``rows`` is big enough to chunk across the pool."""
    return thread_count() > 1 and rows >= min_parallel_rows()


def _get_pool(workers):
    """The persistent pool, grown (never shrunk) to ``workers`` threads."""
    global _pool, _pool_size
    with _pool_lock:
        if _pool is None or _pool_size < workers:
            if _pool is not None:
                _pool.shutdown(wait=False)
            _pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-compute")
            _pool_size = workers
        return _pool


def _run_chunks(fn, bounds):
    """Run ``fn(lo, hi)`` over chunk bounds: peers on the pool, one inline."""
    if len(bounds) == 1:
        fn(*bounds[0])
        return
    pool = _get_pool(thread_count() - 1)
    futures = [pool.submit(fn, lo, hi) for lo, hi in bounds[1:]]
    fn(*bounds[0])
    for fut in futures:
        fut.result()


def _chunk_bounds(n, parts):
    """Split ``range(n)`` into <= ``parts`` contiguous non-empty chunks."""
    parts = max(1, min(parts, n))
    edges = np.linspace(0, n, parts + 1).astype(np.int64)
    return [(int(edges[i]), int(edges[i + 1]))
            for i in range(parts) if edges[i] < edges[i + 1]]


def matmul(a, b, out=None):
    """``a @ b`` with the output rows chunked across the pool.

    Bit-identical to ``np.matmul(a, b)``: each output row is computed
    whole by exactly one thread.  Falls back to the plain call below
    the engagement threshold.
    """
    # Inline fast path: this wrapper sits under every MLP layer call.
    stack = _STATE.stack
    threads, min_rows = stack[-1] if stack else (_DEFAULT_THREADS,
                                                 _DEFAULT_MIN_ROWS)
    rows = a.shape[0]
    if threads == 1 or rows < min_rows:
        return np.matmul(a, b, out=out)
    if out is None:
        out = np.empty((rows, b.shape[1]), dtype=np.result_type(a, b))

    def chunk(lo, hi):
        np.matmul(a[lo:hi], b, out=out[lo:hi])

    _run_chunks(chunk, _chunk_bounds(rows, thread_count()))
    return out


def segment_reduce(ufunc, data, order, starts, out=None, alloc=None):
    """Per-segment ``ufunc`` reduction over a sorted-CSR layout.

    ``order`` sorts ``data`` rows by segment; ``starts`` are reduceat
    boundaries into the sorted order.  Returns the ``(len(starts), ...)``
    reduced block (one row per present segment).  The chunked path
    splits at segment boundaries only, so every segment reduces in the
    same element order as the serial sweep — bit-identical.  ``alloc``
    optionally supplies the sorted-gather scratch buffers from a
    :class:`repro.nn.arena.TapeArena`.
    """
    alloc = NULL_ARENA if alloc is None else alloc
    n_seg = len(starts)
    shape = (n_seg,) + data.shape[1:]
    if out is None:
        out = np.empty(shape, dtype=data.dtype)
    if n_seg == 0:
        return out
    if not parallel_enabled(len(order)):
        tmp = alloc.take((len(order),) + data.shape[1:], data.dtype)
        data.take(order, axis=0, out=tmp)
        ufunc.reduceat(tmp, starts, axis=0, out=out)
        alloc.release(tmp)
        return out

    def chunk(lo, hi):
        row0 = int(starts[lo])
        row1 = int(starts[hi]) if hi < n_seg else len(order)
        tmp = alloc.take((row1 - row0,) + data.shape[1:], data.dtype)
        data.take(order[row0:row1], axis=0, out=tmp)
        ufunc.reduceat(tmp, starts[lo:hi] - row0, axis=0, out=out[lo:hi])
        alloc.release(tmp)

    _run_chunks(chunk, _chunk_bounds(n_seg, thread_count()))
    return out
