"""Neural network modules: parameter containers, Linear and MLP.

The paper states all MLPs use 3 hidden layers of 64 neurons; :class:`MLP`
defaults to that configuration.
"""

from __future__ import annotations

import numpy as np

from . import kernels
from .tensor import Tensor

__all__ = ["Module", "Linear", "MLP", "Sequential", "ReLU", "Sigmoid", "Tanh"]


class Module:
    """Base class tracking parameters and sub-modules by attribute."""

    def __init__(self):
        self._parameters = {}
        self._modules = {}
        self.training = True

    def __setattr__(self, name, value):
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        elif isinstance(value, (list, tuple)) and value and all(
                isinstance(v, Module) for v in value):
            for i, mod in enumerate(value):
                self.__dict__.setdefault("_modules", {})[f"{name}.{i}"] = mod
        object.__setattr__(self, name, value)

    def parameters(self):
        """Yield all trainable parameters, depth first, deterministically."""
        for param in self._parameters.values():
            yield param
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix=""):
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mname, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mname}.")

    def num_parameters(self):
        return sum(p.size for p in self.parameters())

    def zero_grad(self):
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode=True):
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self):
        return self.train(False)

    def state_dict(self):
        """Copy of every parameter array keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state):
        own = dict(self.named_parameters())
        if set(own) != set(state):
            missing = set(own) ^ set(state)
            raise KeyError(f"state dict mismatch on keys: {sorted(missing)}")
        for name, values in state.items():
            if own[name].data.shape != values.shape:
                raise ValueError(f"shape mismatch for {name}")
            own[name].data = values.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``x @ W + b`` with Kaiming-uniform initialisation."""

    def __init__(self, in_features, out_features, rng, bias=True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        bound = np.sqrt(6.0 / in_features)
        self.weight = Tensor(
            rng.uniform(-bound, bound, size=(in_features, out_features)),
            requires_grad=True)
        self.bias = (Tensor(np.zeros(out_features), requires_grad=True)
                     if bias else None)

    def forward(self, x):
        return x.affine(self.weight, self.bias)


class ReLU(Module):
    def forward(self, x):
        return x.relu()


class Sigmoid(Module):
    def forward(self, x):
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x):
        return x.tanh()


class Sequential(Module):
    """Layer chain.  Under the fused kernel backend, every maximal run
    of ``Linear`` layers (each optionally followed by ``ReLU``/``Tanh``)
    is executed as ONE :func:`repro.nn.kernels.mlp_chain` tape node —
    a whole MLP becomes a single autograd node.  Numerically identical
    to the layer-by-layer path; the module structure — and thus every
    state-dict key — is unchanged.
    """

    def __init__(self, *layers):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        layers = self.layers
        if kernels.is_fused():
            i, n = 0, len(layers)
            while i < n:
                layer = layers[i]
                if isinstance(layer, Linear):
                    steps = []
                    while i < n and isinstance(layers[i], Linear):
                        lin = layers[i]
                        i += 1
                        act = None
                        if i < n and isinstance(layers[i], (ReLU, Tanh)):
                            act = ("relu" if isinstance(layers[i], ReLU)
                                   else "tanh")
                            i += 1
                        steps.append((lin.weight, lin.bias, act))
                    x = kernels.mlp_chain(x, steps)
                else:
                    x = layer(x)
                    i += 1
            return x
        for layer in layers:
            x = layer(x)
        return x


class MLP(Module):
    """Multilayer perceptron; paper default is 3 hidden layers of 64 units.

    ``forward(x, activation=...)`` optionally applies one extra output
    activation (``"tanh"``/``"softplus"``/``"sigmoid"``/``"relu"``) —
    the models' ubiquitous ``mlp(x).tanh()`` pattern.  Under the fused
    backend the whole call, output activation included, runs as a single
    :func:`repro.nn.kernels.mlp_chain` tape node.
    """

    def __init__(self, in_features, out_features, rng,
                 hidden=64, num_hidden_layers=3, activation="relu"):
        super().__init__()
        dims = [in_features] + [hidden] * num_hidden_layers + [out_features]
        layers = []
        for i, (din, dout) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(din, dout, rng))
            if i < len(dims) - 2:
                if activation == "relu":
                    layers.append(ReLU())
                elif activation == "tanh":
                    layers.append(Tanh())
                else:
                    raise ValueError(f"unknown activation {activation!r}")
        self.net = Sequential(*layers)
        self._steps = None

    def fused_steps(self):
        """The ``(weight, bias, activation)`` chain for the fused kernels.

        Built once and cached: the chain is stable because parameters
        are mutated via ``.data`` (load_state_dict), never replaced.
        """
        if self._steps is None:
            steps, layers = [], self.net.layers
            i, n = 0, len(layers)
            while i < n:
                lin = layers[i]
                i += 1
                act = None
                if i < n and isinstance(layers[i], (ReLU, Tanh)):
                    act = ("relu" if isinstance(layers[i], ReLU)
                           else "tanh")
                    i += 1
                steps.append((lin.weight, lin.bias, act))
            self._steps = steps
        return self._steps

    def forward(self, x, activation=None):
        if kernels.is_fused():
            return kernels.mlp_chain(x, self.fused_steps(),
                                     out_act=activation)
        out = self.net(x)
        if activation is None:
            return out
        if activation == "tanh":
            return out.tanh()
        if activation == "softplus":
            return out.softplus()
        if activation == "sigmoid":
            return out.sigmoid()
        if activation == "relu":
            return out.relu()
        raise ValueError(f"unknown activation {activation!r}")
