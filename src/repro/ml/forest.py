"""Random forest regressor (bagging over CART trees)."""

from __future__ import annotations

import numpy as np

from .tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor:
    """Bagged multi-output regression forest.

    Matches the spirit of the random forest in Barboza et al. [5]:
    bootstrap sampling per tree and sqrt-feature subsampling per split.
    """

    def __init__(self, n_estimators=40, max_depth=12, min_samples_leaf=4,
                 max_features="sqrt", seed=0):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_ = []

    def fit(self, x, y):
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1:
            y = y[:, None]
        rng = np.random.default_rng(self.seed)
        n, d = x.shape
        if self.max_features == "sqrt":
            max_features = max(1, int(round(np.sqrt(d))))
        else:
            max_features = self.max_features
        self.trees_ = []
        for _ in range(self.n_estimators):
            sample = rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=np.random.default_rng(rng.integers(0, 2 ** 31)))
            tree.fit(x[sample], y[sample])
            self.trees_.append(tree)
        return self

    def predict(self, x):
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        acc = self.trees_[0].predict(x)
        for tree in self.trees_[1:]:
            acc = acc + tree.predict(x)
        return acc / len(self.trees_)
