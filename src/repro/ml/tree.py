"""CART regression trees (multi-output), built on numpy.

scikit-learn is not available in this environment, so the random-forest
baseline of the paper's Table 4 is backed by this implementation.  Splits
minimise the summed per-output variance; candidate thresholds are taken
at feature quantiles, which makes tree construction fast enough for the
benchmark suite while staying within a constant factor of exhaustive
CART quality.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DecisionTreeRegressor"]


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value):
        self.feature = -1
        self.threshold = 0.0
        self.left = None
        self.right = None
        self.value = value

    @property
    def is_leaf(self):
        return self.left is None


class DecisionTreeRegressor:
    """A multi-output CART regression tree.

    Parameters
    ----------
    max_depth : maximum tree depth.
    min_samples_split : minimum samples to attempt a split.
    min_samples_leaf : minimum samples on each side of a split.
    max_features : number (or fraction) of features examined per split;
        None uses all features.
    n_thresholds : quantile candidates per feature per split.
    """

    def __init__(self, max_depth=12, min_samples_split=8, min_samples_leaf=4,
                 max_features=None, n_thresholds=16, rng=None):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.n_thresholds = n_thresholds
        self.rng = rng or np.random.default_rng(0)
        self.root_ = None
        self.n_outputs_ = None

    # -- fitting ------------------------------------------------------------
    def fit(self, x, y):
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1:
            y = y[:, None]
        self.n_outputs_ = y.shape[1]
        self.root_ = self._grow(x, y, depth=0)
        return self

    def _n_features_to_try(self, total):
        if self.max_features is None:
            return total
        if isinstance(self.max_features, float):
            return max(1, int(round(self.max_features * total)))
        return min(total, int(self.max_features))

    def _grow(self, x, y, depth):
        node = _Node(value=y.mean(axis=0))
        n, d = x.shape
        if depth >= self.max_depth or n < self.min_samples_split:
            return node
        parent_sse = float(((y - node.value) ** 2).sum())
        if parent_sse <= 1e-12:
            return node

        best = (None, None, parent_sse)
        n_try = self._n_features_to_try(d)
        features = self.rng.permutation(d)[:n_try]
        for f in features:
            col = x[:, f]
            qs = np.linspace(0.0, 1.0, self.n_thresholds + 2)[1:-1]
            thresholds = np.unique(np.quantile(col, qs))
            for t in thresholds:
                mask = col <= t
                n_left = int(mask.sum())
                if n_left < self.min_samples_leaf or \
                        n - n_left < self.min_samples_leaf:
                    continue
                yl, yr = y[mask], y[~mask]
                sse = float(((yl - yl.mean(axis=0)) ** 2).sum() +
                            ((yr - yr.mean(axis=0)) ** 2).sum())
                if sse < best[2]:
                    best = (f, t, sse)
        feature, threshold, sse = best
        if feature is None or sse >= parent_sse - 1e-12:
            return node
        mask = x[:, feature] <= threshold
        node.feature = int(feature)
        node.threshold = float(threshold)
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    # -- prediction -----------------------------------------------------------
    def predict(self, x):
        x = np.asarray(x, dtype=np.float64)
        out = np.zeros((len(x), self.n_outputs_))
        idx = np.arange(len(x))
        stack = [(self.root_, idx)]
        while stack:
            node, members = stack.pop()
            if len(members) == 0:
                continue
            if node.is_leaf:
                out[members] = node.value
                continue
            mask = x[members, node.feature] <= node.threshold
            stack.append((node.left, members[mask]))
            stack.append((node.right, members[~mask]))
        return out

    def depth(self):
        def walk(node):
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        return walk(self.root_)
