"""Evaluation metrics used throughout the paper's tables."""

from __future__ import annotations

import numpy as np

__all__ = ["r2_score", "mae", "rmse", "pearson_correlation",
           "spearman_correlation"]


def r2_score(y_true, y_pred):
    """Coefficient of determination, pooled over all outputs.

    Matches the paper's usage: 1 - SS_res / SS_tot over every reported
    value.  Can be negative when predictions are worse than predicting
    the mean (as for the deep GCNII baselines on test designs in
    Table 5).
    """
    y_true = np.asarray(y_true, dtype=np.float64).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=np.float64).reshape(-1)
    finite = np.isfinite(y_true) & np.isfinite(y_pred)
    y_true, y_pred = y_true[finite], y_pred[finite]
    if len(y_true) == 0:
        return float("nan")
    ss_res = float(((y_true - y_pred) ** 2).sum())
    ss_tot = float(((y_true - y_true.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else -np.inf
    return 1.0 - ss_res / ss_tot


def mae(y_true, y_pred):
    """Mean absolute error over finite entries."""
    y_true = np.asarray(y_true, dtype=np.float64).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=np.float64).reshape(-1)
    finite = np.isfinite(y_true) & np.isfinite(y_pred)
    return float(np.abs(y_true[finite] - y_pred[finite]).mean())


def rmse(y_true, y_pred):
    """Root mean squared error over finite entries."""
    y_true = np.asarray(y_true, dtype=np.float64).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=np.float64).reshape(-1)
    finite = np.isfinite(y_true) & np.isfinite(y_pred)
    return float(np.sqrt(((y_true[finite] - y_pred[finite]) ** 2).mean()))


def pearson_correlation(y_true, y_pred):
    """Pearson r (the visual metric behind the paper's Figure 4)."""
    y_true = np.asarray(y_true, dtype=np.float64).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=np.float64).reshape(-1)
    finite = np.isfinite(y_true) & np.isfinite(y_pred)
    y_true, y_pred = y_true[finite], y_pred[finite]
    if len(y_true) < 2:
        return float("nan")
    st, sp = y_true.std(), y_pred.std()
    if st == 0.0 or sp == 0.0:
        return float("nan")
    return float(((y_true - y_true.mean()) * (y_pred - y_pred.mean())).mean()
                 / (st * sp))


def _ranks(values):
    """Fractional ranks (ties get the average rank), 1-based."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(1, len(values) + 1, dtype=np.float64)
    # Average ranks within tie groups so exact ties don't depend on order.
    sorted_vals = values[order]
    i = 0
    while i < len(sorted_vals):
        j = i
        while j + 1 < len(sorted_vals) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            ranks[order[i:j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def spearman_correlation(y_true, y_pred):
    """Spearman rank correlation over finite entries (tie-aware).

    The E2ESlack-style endpoint metric: how well the prediction orders
    endpoints by slack, independent of calibration.  Pearson r over
    fractional ranks.
    """
    y_true = np.asarray(y_true, dtype=np.float64).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=np.float64).reshape(-1)
    finite = np.isfinite(y_true) & np.isfinite(y_pred)
    y_true, y_pred = y_true[finite], y_pred[finite]
    if len(y_true) < 2:
        return float("nan")
    return pearson_correlation(_ranks(y_true), _ranks(y_pred))
