"""Classical ML: CART trees, random forest, and metrics (no sklearn here)."""

from .tree import DecisionTreeRegressor
from .forest import RandomForestRegressor
from .metrics import r2_score, mae, rmse, pearson_correlation

__all__ = ["DecisionTreeRegressor", "RandomForestRegressor",
           "r2_score", "mae", "rmse", "pearson_correlation"]
