"""Classical ML: CART trees, random forest, and metrics (no sklearn here)."""

from .tree import DecisionTreeRegressor
from .forest import RandomForestRegressor
from .metrics import (r2_score, mae, rmse, pearson_correlation,
                      spearman_correlation)
from .endpoint_metrics import (endpoint_slack_metrics, worst_slack_per_endpoint,
                               top_k_negative_recall)

__all__ = ["DecisionTreeRegressor", "RandomForestRegressor",
           "r2_score", "mae", "rmse", "pearson_correlation",
           "spearman_correlation", "endpoint_slack_metrics",
           "worst_slack_per_endpoint", "top_k_negative_recall"]
