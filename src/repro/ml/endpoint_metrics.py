"""Endpoint-level accuracy metrics (E2ESlack-style).

Shared by offline evaluation (``repro.training.evaluate``) and the
online shadow-STA audit loop (``repro.obs.quality``), so the run ledger
and the serving quality monitor report *identical* numbers for the same
(model, design) pair.

All functions take endpoint slack arrays of shape (num_endpoints, 4)
in the STA engine's corner layout: hold slack in columns 0-1, setup
slack in columns 2-3 (see ``training.evaluate.slack_from_arrival``).
Per-endpoint worst slack is the nanmin over the mode's two columns —
the quantity an ECO loop accepts or reverts on.
"""

from __future__ import annotations

import math

import numpy as np

from .metrics import mae, spearman_correlation

__all__ = ["endpoint_slack_metrics", "worst_slack_per_endpoint",
           "top_k_negative_recall", "HOLD_COLS", "SETUP_COLS"]

HOLD_COLS = (0, 1)
SETUP_COLS = (2, 3)


def worst_slack_per_endpoint(slack, mode="setup"):
    """Per-endpoint worst slack for one mode, shape (num_endpoints,)."""
    slack = np.asarray(slack, dtype=np.float64)
    if slack.ndim != 2 or slack.shape[1] != 4:
        raise ValueError(f"expected (E, 4) slack array, got {slack.shape}")
    cols = SETUP_COLS if mode == "setup" else HOLD_COLS
    with np.errstate(invalid="ignore"):
        return np.nanmin(slack[:, cols], axis=1)


def top_k_negative_recall(slack_true, slack_pred, k=None):
    """Fraction of the k truly-worst endpoints recovered by the prediction.

    Operates on per-endpoint worst-slack vectors.  ``k`` defaults to the
    number of endpoints with negative true slack (the violating set an
    ECO would chase); when nothing violates, the worst 10% (at least 1)
    stands in so the metric stays defined on clean designs.
    """
    t = np.asarray(slack_true, dtype=np.float64).reshape(-1)
    p = np.asarray(slack_pred, dtype=np.float64).reshape(-1)
    finite = np.isfinite(t) & np.isfinite(p)
    t, p = t[finite], p[finite]
    if len(t) == 0:
        return float("nan")
    if k is None:
        k = int((t < 0.0).sum())
        if k == 0:
            k = max(1, math.ceil(0.1 * len(t)))
    k = min(int(k), len(t))
    if k <= 0:
        return float("nan")
    true_set = set(np.argsort(t, kind="stable")[:k].tolist())
    pred_set = set(np.argsort(p, kind="stable")[:k].tolist())
    return float(len(true_set & pred_set)) / float(k)


def endpoint_slack_metrics(slack_true, slack_pred, *, time_scale=1.0,
                           top_k=None):
    """Endpoint accuracy summary between true and predicted (E, 4) slack.

    Returns, per mode (setup/hold): absolute WNS and TNS error, worst
    per-endpoint slack MAE, Spearman rank correlation, and top-k
    negative-slack recall — plus a combined ``slack_mae`` over both
    modes.  Times are multiplied by ``time_scale`` (pass the dataset's
    TIME_SCALE for picoseconds).
    """
    out = {}
    combined = []
    for mode in ("setup", "hold"):
        t = worst_slack_per_endpoint(slack_true, mode) * time_scale
        p = worst_slack_per_endpoint(slack_pred, mode) * time_scale
        finite = np.isfinite(t) & np.isfinite(p)
        t, p = t[finite], p[finite]
        if len(t) == 0:
            out[f"wns_{mode}_err"] = float("nan")
            out[f"tns_{mode}_err"] = float("nan")
            out[f"slack_mae_{mode}"] = float("nan")
            out[f"rank_{mode}"] = float("nan")
            out[f"recall_{mode}"] = float("nan")
            continue
        wns_t, wns_p = float(t.min()), float(p.min())
        tns_t = float(np.minimum(t, 0.0).sum())
        tns_p = float(np.minimum(p, 0.0).sum())
        out[f"wns_{mode}_err"] = abs(wns_t - wns_p)
        out[f"tns_{mode}_err"] = abs(tns_t - tns_p)
        out[f"slack_mae_{mode}"] = mae(t, p)
        out[f"rank_{mode}"] = spearman_correlation(t, p)
        out[f"recall_{mode}"] = top_k_negative_recall(t, p, k=top_k)
        combined.append(np.abs(t - p))
    out["slack_mae"] = (float(np.concatenate(combined).mean())
                        if combined else float("nan"))
    return out
