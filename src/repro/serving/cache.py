"""Thread-safe LRU cache with hit/miss accounting.

Used by the prediction service for two warm caches: extracted
``HeteroGraph`` artefacts (keyed by content hash of the placed netlist)
and finished prediction payloads (keyed by model version + graph key).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    All operations take a single internal lock, so the cache itself is
    safe under concurrent access.  :meth:`get_or_create` additionally
    serializes *per-key* factory calls, so N concurrent first requests
    for the same design extract its graph once, not N times — while
    factories for different keys run concurrently.
    """

    def __init__(self, capacity=128):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._data = OrderedDict()
        self._lock = threading.Lock()
        self._key_locks = {}
        self._hits = 0
        self._misses = 0

    def __len__(self):
        with self._lock:
            return len(self._data)

    def __contains__(self, key):
        with self._lock:
            return key in self._data

    def get(self, key, default=None):
        """Look up ``key``; counts a hit or miss and refreshes recency."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key, value):
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def get_or_create(self, key, factory):
        """Return the cached value, building it with ``factory()`` on miss.

        Returns ``(value, hit)``.  Concurrent misses on the same key run
        the factory exactly once.
        """
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is not _MISSING:
                self._data.move_to_end(key)
                self._hits += 1
                return value, True
            key_lock = self._key_locks.get(key)
            if key_lock is None:
                key_lock = self._key_locks[key] = threading.Lock()
        with key_lock:
            with self._lock:
                value = self._data.get(key, _MISSING)
                if value is not _MISSING:
                    self._data.move_to_end(key)
                    self._hits += 1
                    return value, True
                self._misses += 1
            value = factory()
            self.put(key, value)
            with self._lock:
                self._key_locks.pop(key, None)
            return value, False

    def clear(self):
        with self._lock:
            self._data.clear()

    def stats(self):
        with self._lock:
            total = self._hits + self._misses
            return {"size": len(self._data), "capacity": self.capacity,
                    "hits": self._hits, "misses": self._misses,
                    "hit_rate": (self._hits / total) if total else 0.0}
