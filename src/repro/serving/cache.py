"""Thread-safe LRU cache with hit/miss/eviction accounting.

Used by the prediction service for two warm caches: extracted
``HeteroGraph`` artefacts (keyed by content hash of the placed netlist)
and finished prediction payloads (keyed by model version + graph key).

Accounting lives in :mod:`repro.obs` counters.  Pass a shared
``MetricsRegistry`` (as :class:`~repro.serving.service.PredictionService`
does) and the cache's hits/misses/evictions/size appear on the
Prometheus ``/metrics`` endpoint, labelled ``{cache="<name>"}``;
:meth:`stats` reads the very same instruments, so the JSON and
Prometheus views cannot disagree.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..obs import MetricsRegistry

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    All operations take a single internal lock, so the cache itself is
    safe under concurrent access.  :meth:`get_or_create` additionally
    serializes *per-key* factory calls, so N concurrent first requests
    for the same design extract its graph once, not N times — while
    factories for different keys run concurrently.
    """

    def __init__(self, capacity=128, registry=None, name=""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.name = name
        self._data = OrderedDict()
        self._lock = threading.Lock()
        self._key_locks = {}
        metrics = registry if registry is not None else MetricsRegistry()
        labels = {"cache": name} if name else {}
        self._hits = metrics.counter(
            "repro_cache_hits_total", "Cache lookups served from memory.",
            **labels)
        self._misses = metrics.counter(
            "repro_cache_misses_total", "Cache lookups that missed.",
            **labels)
        self._evictions = metrics.counter(
            "repro_cache_evictions_total",
            "Entries dropped by LRU eviction.", **labels)
        self._size = metrics.gauge(
            "repro_cache_size", "Entries currently cached.", **labels)

    def __len__(self):
        with self._lock:
            return len(self._data)

    def __contains__(self, key):
        with self._lock:
            return key in self._data

    def get(self, key, default=None):
        """Look up ``key``; counts a hit or miss and refreshes recency."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._misses.inc()
                return default
            self._data.move_to_end(key)
            self._hits.inc()
            return value

    def put(self, key, value):
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self._evictions.inc()
            self._size.set(len(self._data))

    def get_or_create(self, key, factory):
        """Return the cached value, building it with ``factory()`` on miss.

        Returns ``(value, hit)``.  Concurrent misses on the same key run
        the factory exactly once.
        """
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is not _MISSING:
                self._data.move_to_end(key)
                self._hits.inc()
                return value, True
            key_lock = self._key_locks.get(key)
            if key_lock is None:
                key_lock = self._key_locks[key] = threading.Lock()
        with key_lock:
            with self._lock:
                value = self._data.get(key, _MISSING)
                if value is not _MISSING:
                    self._data.move_to_end(key)
                    self._hits.inc()
                    return value, True
                self._misses.inc()
            value = factory()
            self.put(key, value)
            with self._lock:
                self._key_locks.pop(key, None)
            return value, False

    def clear(self):
        with self._lock:
            self._data.clear()
            self._size.set(0)

    def stats(self):
        hits = int(self._hits.value)
        misses = int(self._misses.value)
        total = hits + misses
        return {"size": len(self), "capacity": self.capacity,
                "hits": hits, "misses": misses,
                "evictions": int(self._evictions.value),
                "hit_rate": (hits / total) if total else 0.0}
