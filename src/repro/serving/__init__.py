"""Serving layer: batched, concurrent slack prediction as a service.

The reproduction's first traffic-facing subsystem (see DESIGN.md §3):

* :mod:`.registry`  — named, versioned warm-model registry;
* :mod:`.cache`     — thread-safe LRU caches (graphs, results);
* :mod:`.batching`  — micro-batching executor (disjoint-union forwards);
* :mod:`.service`   — the transport-agnostic core with deadlines and
  graceful degradation to the ground-truth STA path;
* :mod:`.delta`     — incremental (ECO) prediction sessions: apply a
  small edit list to a live graph and re-predict cone-limited;
* :mod:`.http`      — stdlib JSON/HTTP front-end (``/predict``,
  ``/models``, ``/healthz``, ``/stats``, Prometheus ``/metrics``);
* :mod:`.loadgen`   — concurrent load-generator benchmark harness
  (results tracked across PRs in ``BENCH_serving.json``);
* :mod:`.pool`      — pre-fork multi-process serving tier: N predictor
  workers attached zero-copy to shared-memory model weights and graph
  arrays, with admission control, crash supervision, and per-worker
  micro-batching.

All serving telemetry lives in one :class:`repro.obs.MetricsRegistry`
per service — ``/stats`` and ``/metrics`` are two views of it.
"""

from .batching import BatchTimeout, MicroBatcher
from .cache import LRUCache
from .delta import DeltaClient, DeltaRequest, DeltaSession
from .http import ServingServer, make_server
from .loadgen import (LoadgenResult, format_loadgen_report, run_loadgen,
                      write_bench_json)
from .pool import (NotPoolable, PoolCrashError, PoolError,
                   PooledPredictionService, PoolRouter, PoolWorker)
from .registry import (DEFAULT_MODELS, ModelEntry, ModelLoadError,
                       ModelRegistry)
from .service import (Overloaded, PredictionService, PredictRequest,
                      PredictResponse, RequestError)

__all__ = [
    "BatchTimeout", "MicroBatcher",
    "LRUCache",
    "DeltaClient", "DeltaRequest", "DeltaSession",
    "ServingServer", "make_server",
    "LoadgenResult", "format_loadgen_report", "run_loadgen",
    "write_bench_json",
    "NotPoolable", "PoolCrashError", "PoolError",
    "PooledPredictionService", "PoolRouter", "PoolWorker",
    "DEFAULT_MODELS", "ModelEntry", "ModelLoadError", "ModelRegistry",
    "Overloaded", "PredictionService", "PredictRequest",
    "PredictResponse", "RequestError",
]
