"""Micro-batching executor: coalesce concurrent requests into one pass.

One :class:`MicroBatcher` serves one model.  Caller threads submit
``(key, graph)`` work items and block; a single worker thread drains the
queue, waits up to ``window_s`` for stragglers, dedupes items that refer
to the same graph, runs the supplied ``runner`` once over the whole
batch (a disjoint-union forward pass — see
:func:`repro.graphdata.batch_graphs`), and hands each caller its own
slice of the result.

Submitting with a timeout gives deadline semantics: a caller that stops
waiting simply abandons its ticket; the batch still completes and warms
the result cache for the next request.
"""

from __future__ import annotations

import threading
import time

from ..obs import MetricsRegistry

__all__ = ["MicroBatcher", "BatchTimeout"]


class BatchTimeout(Exception):
    """The caller's deadline expired before its batch finished."""


class _Ticket:
    __slots__ = ("key", "graph", "event", "result", "error", "batch_size")

    def __init__(self, key, graph):
        self.key = key
        self.graph = graph
        self.event = threading.Event()
        self.result = None
        self.error = None
        self.batch_size = 0


class MicroBatcher:
    """Coalesces concurrent submissions to one ``runner`` call.

    ``runner(graphs) -> list`` must return one result per input graph,
    in order.
    """

    def __init__(self, runner, window_s=0.002, max_batch=16, name="",
                 registry=None):
        self.runner = runner
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self.name = name
        self._queue = []
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        metrics = registry if registry is not None else MetricsRegistry()
        labels = {"model": name} if name else {}
        self._batch_hist = metrics.histogram(
            "repro_batch_size",
            "Requests coalesced per micro-batch forward pass.", **labels)
        self._queue_depth = metrics.gauge(
            "repro_batch_queue_depth",
            "Requests waiting for the next micro-batch.", **labels)
        self._worker = threading.Thread(
            target=self._run, name=f"microbatch-{name or hex(id(self))}",
            daemon=True)
        self._worker.start()

    # -- caller side ------------------------------------------------------------
    def submit(self, key, graph, timeout=None):
        """Block until the batch containing this item ran.

        Returns ``(result, batch_size)``.  Raises :class:`BatchTimeout`
        when ``timeout`` (seconds) elapses first, or re-raises the
        runner's exception if the batch failed.
        """
        ticket = _Ticket(key, graph)
        with self._lock:
            if self._closed:
                raise RuntimeError("batcher is closed")
            self._queue.append(ticket)
            self._queue_depth.set(len(self._queue))
            self._wakeup.notify()
        if not ticket.event.wait(timeout):
            raise BatchTimeout(
                f"batch for {key!r} did not finish within {timeout}s")
        if ticket.error is not None:
            raise ticket.error
        return ticket.result, ticket.batch_size

    # -- worker side ------------------------------------------------------------
    def _take_batch(self):
        """Wait for work, then give stragglers ``window_s`` to pile on."""
        with self._lock:
            while not self._queue and not self._closed:
                self._wakeup.wait()
            if self._closed and not self._queue:
                return None
        deadline = time.perf_counter() + self.window_s
        while True:
            with self._lock:
                if len(self._queue) >= self.max_batch or self._closed:
                    break
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            time.sleep(min(remaining, self.window_s / 4 or 1e-4))
        with self._lock:
            batch, self._queue = (self._queue[:self.max_batch],
                                  self._queue[self.max_batch:])
            self._queue_depth.set(len(self._queue))
        return batch

    def _run(self):
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            # Dedupe identical graphs: N requests for one design cost
            # one slot in the forward pass.
            unique_keys, unique_graphs = [], []
            position = {}
            for ticket in batch:
                if ticket.key not in position:
                    position[ticket.key] = len(unique_keys)
                    unique_keys.append(ticket.key)
                    unique_graphs.append(ticket.graph)
            try:
                results = self.runner(unique_graphs)
                if len(results) != len(unique_graphs):
                    raise RuntimeError(
                        f"runner returned {len(results)} results for "
                        f"{len(unique_graphs)} graphs")
                for ticket in batch:
                    ticket.result = results[position[ticket.key]]
            except Exception as exc:
                for ticket in batch:
                    ticket.error = exc
            self._batch_hist.observe(len(batch))
            for ticket in batch:
                ticket.batch_size = len(batch)
                ticket.event.set()

    # -- lifecycle / stats ------------------------------------------------------
    def close(self):
        with self._lock:
            self._closed = True
            self._wakeup.notify_all()
        self._worker.join(timeout=5.0)

    def stats(self):
        snap = self._batch_hist.snapshot()
        with self._lock:
            depth = len(self._queue)
        return {"batches": snap["count"], "items": int(snap["sum"]),
                "max_batch": int(snap["max"]),
                "mean_batch": snap["mean"], "queue_depth": depth}
