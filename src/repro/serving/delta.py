"""Delta sessions: incremental ECO prediction through the serving stack.

A :class:`DeltaRequest` names a base graph already servable by the
graph cache (design + seed + scale) and a small edit list (move cell,
resize cell, insert/remove buffer).  The service keeps one
:class:`DeltaSession` per base graph key: a deterministic rebuild of
the cached design's artefact chain (so the shared cache entry itself is
never mutated) wrapped in a
:class:`~repro.graphdata.patch.GraphPatcher`, plus one cached
:class:`~repro.models.incremental.IncrementalForwardState` per model.
Each request applies its edits under the session lock, bumps the graph
version, and re-predicts cone-limited — only the levels/segments
downstream of the touched pins re-execute.

:class:`DeltaClient` is the closed-loop face of the endpoint: the
optimizers in :mod:`repro.opt` use it (``use_service=``) to drive trial
edits against the model instead of ground-truth STA.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field

from .. import nn
from ..graphdata.patch import GraphPatcher
from ..models.incremental import IncrementalForwardState
from .service import RequestError

__all__ = ["DeltaRequest", "DeltaSession", "DeltaClient"]


@dataclass
class DeltaRequest:
    """One incremental prediction request against a delta session."""

    design: str = None
    model: str = "timing-full"
    seed: int = 1
    scale: float = None
    edits: list = field(default_factory=list)
    include_slack: bool = False
    no_cache: bool = False
    deadline_ms: float = None
    request_id: str = field(default_factory=lambda: uuid.uuid4().hex[:12])
    created_at: float = field(default_factory=time.perf_counter)

    @classmethod
    def from_dict(cls, payload):
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        known = {"design", "model", "seed", "scale", "edits",
                 "include_slack", "no_cache", "deadline_ms", "request_id"}
        unknown = set(payload) - known
        if unknown:
            raise RequestError(f"unknown request fields: {sorted(unknown)}")
        kwargs = {k: payload[k] for k in known if k in payload}
        if not kwargs.get("request_id"):
            kwargs.pop("request_id", None)
        return cls(**kwargs)

    def validate(self):
        if not self.design or not isinstance(self.design, str):
            raise RequestError(
                "'design' (a named benchmark) is required for delta "
                "requests")
        if not isinstance(self.model, str) or not self.model:
            raise RequestError("'model' must be a non-empty string")
        try:
            self.seed = int(self.seed)
        except (TypeError, ValueError):
            raise RequestError("'seed' must be an integer")
        if self.scale is not None:
            try:
                self.scale = float(self.scale)
            except (TypeError, ValueError):
                raise RequestError("'scale' must be a number")
            if self.scale <= 0:
                raise RequestError("'scale' must be positive")
        if not isinstance(self.edits, list):
            raise RequestError("'edits' must be a list of edit objects")
        if self.deadline_ms is not None:
            try:
                self.deadline_ms = float(self.deadline_ms)
            except (TypeError, ValueError):
                raise RequestError("'deadline_ms' must be a number")
            if self.deadline_ms < 0:
                raise RequestError("'deadline_ms' must be >= 0")
        self.include_slack = bool(self.include_slack)
        self.no_cache = bool(self.no_cache)
        return self

    def remaining_s(self):
        if self.deadline_ms is None:
            return None
        elapsed = time.perf_counter() - self.created_at
        return self.deadline_ms / 1000.0 - elapsed

    def base_request(self):
        """The equivalent whole-graph request (resolves the base key)."""
        from .service import PredictRequest
        return PredictRequest(design=self.design, model=self.model,
                              seed=self.seed, scale=self.scale,
                              include_slack=self.include_slack).validate()


class DeltaSession:
    """One design's live edit session.

    Rebuilds the cached base graph's artefact chain deterministically
    (same generator, placement seed and scale as the graph cache entry,
    hence bit-identical arrays) and keeps it in sync with the edit
    stream.  All mutation happens under :attr:`lock`; the ``nonce``
    makes result-cache keys unique to this session instance, so an
    evicted-and-rebuilt session can never collide with payloads cached
    by its predecessor at the same version number.
    """

    def __init__(self, design, seed, scale, key):
        from ..flow import Flow
        flow = Flow.from_benchmark(design, scale=scale)
        flow.place(seed=seed)
        hetero = flow.extract()
        self.design = design
        self.seed = seed
        self.scale = scale
        self.key = key
        self.nonce = uuid.uuid4().hex[:8]
        self.lock = threading.RLock()
        self.patcher = GraphPatcher(flow.design, flow.placement,
                                    flow.routing, flow.graph, flow.result,
                                    hetero)
        self.dirty_log = []        # dirty_log[i]: the edit taking i -> i+1
        self._states = {}          # (model name, version) -> forward state

    @property
    def version(self):
        return self.patcher.version

    @property
    def hetero(self):
        return self.patcher.hetero

    def apply(self, edits):
        """Apply parsed edits in order; appends each to the dirty log."""
        for edit in edits:
            self.dirty_log.append(self.patcher.apply(edit))
        return len(edits)

    def state_for(self, entry):
        skey = (entry.name, entry.version)
        state = self._states.get(skey)
        if state is None:
            state = IncrementalForwardState(entry.model)
            self._states[skey] = state
        return state

    def refresh(self, entry):
        """Bring ``entry``'s forward state up to the current version.

        Returns ``(state, stats)`` where ``state.arrival``/``.slew`` are
        fresh predictions for the patched graph.
        """
        state = self.state_for(entry)
        deltas = (self.dirty_log[max(state.version, 0):]
                  if state.he is not None else [])
        stats = state.refresh(self.hetero, deltas, self.version)
        return state, stats

    def netdelay(self, entry):
        """Full net-embedding forward (netdelay-kind models)."""
        with nn.no_grad():
            _h, net_delay = entry.model.forward(self.hetero)
        return net_delay.data

    def materialize(self):
        """Ground-truth label parity (see GraphPatcher.materialize)."""
        return self.patcher.materialize()


class DeltaClient:
    """Closed-loop optimizer client for ``predict_delta``.

    Binds one (service, design, model, seed, scale) tuple; every call
    sends one delta request and returns the prediction payload.  The
    convenience methods return the predicted setup WNS in ps (timing
    models only), which is what the greedy accept/revert loops in
    :mod:`repro.opt` key their decisions on.
    """

    def __init__(self, service, design, model="timing-full", seed=1,
                 scale=None, include_slack=False):
        self.service = service
        self.design = design
        self.model = model
        self.seed = seed
        self.scale = scale
        self.include_slack = include_slack

    def apply(self, edits):
        body = {"design": self.design, "model": self.model,
                "seed": self.seed, "edits": list(edits),
                "include_slack": self.include_slack}
        if self.scale is not None:
            body["scale"] = self.scale
        return self.service.predict_delta(body).prediction

    def wns_setup_ps(self, edits=()):
        return float(self.apply(edits)["wns_setup_ps"])

    def move_cell(self, cell, x, y):
        return self.wns_setup_ps([{"op": "move_cell", "cell": cell,
                                   "x": float(x), "y": float(y)}])

    def resize_cell(self, cell, cell_type):
        return self.wns_setup_ps([{"op": "resize_cell", "cell": cell,
                                   "cell_type": cell_type}])

    def insert_buffer(self, net, sink, buffer_cell="BUF_X2", name=None,
                      new_net=None):
        edit = {"op": "insert_buffer", "net": net, "sink": sink,
                "buffer_cell": buffer_cell}
        if name:
            edit["name"] = name
        if new_net:
            edit["new_net"] = new_net
        return self.wns_setup_ps([edit])

    def remove_buffer(self, name):
        return self.wns_setup_ps([{"op": "remove_buffer", "name": name}])
