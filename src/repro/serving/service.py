"""Transport-agnostic prediction service core.

:class:`PredictionService` owns the three warm layers the serving story
is built on:

* a :class:`~repro.serving.registry.ModelRegistry` of named, versioned
  checkpoints loaded once and kept in memory;
* two LRU caches — extracted ``HeteroGraph`` artefacts keyed by content
  hash of the placed netlist, and finished prediction payloads keyed by
  (model version, graph key);
* one :class:`~repro.serving.batching.MicroBatcher` per model that
  coalesces concurrent requests into a single disjoint-union forward
  pass.

Failure policy ("graceful degradation"): if the model cannot answer —
load failure, or the request's deadline expires before the batch runs —
the service falls back to the ground-truth STA labels that were computed
while extracting the graph, and marks the response ``degraded`` instead
of erroring.  Only invalid requests (unknown design/model, malformed
netlist) produce hard errors.
"""

from __future__ import annotations

import hashlib
import threading
import time
import uuid
from dataclasses import dataclass, field

import numpy as np

from ..graphdata import TIME_SCALE
from ..obs import (MetricsRegistry, QualityMonitor, SloTracker,
                   get_registry, get_tracer)
from ..training import slack_from_arrival
from .batching import BatchTimeout, MicroBatcher
from .cache import LRUCache
from .registry import ModelLoadError, ModelRegistry

__all__ = ["PredictRequest", "PredictResponse", "RequestError",
           "Overloaded", "PredictionService"]


class RequestError(ValueError):
    """The request itself is invalid (maps to HTTP 400/404)."""

    def __init__(self, message, status=400):
        super().__init__(message)
        self.status = status


class Overloaded(RequestError):
    """Admission control shed this request (maps to HTTP 503).

    Raised by the pooled serving tier when a worker shard's pending
    queue is past its watermark; clients should back off and retry
    (the load generator's pacing does exactly that).
    """

    def __init__(self, message="server overloaded; retry later"):
        super().__init__(message, status=503)


@dataclass
class PredictRequest:
    """One slack-prediction request.

    Exactly one of ``design`` (a named benchmark) or ``verilog`` (an
    inline structural netlist) must be given.  ``deadline_ms`` bounds
    the caller's wait: past it the service answers from the ground-truth
    STA path with ``degraded=True``.
    """

    design: str = None
    verilog: str = None
    model: str = "timing-full"
    seed: int = 1
    scale: float = None
    deadline_ms: float = None
    include_slack: bool = False
    no_cache: bool = False
    request_id: str = field(default_factory=lambda: uuid.uuid4().hex[:12])
    created_at: float = field(default_factory=time.perf_counter)

    @classmethod
    def from_dict(cls, payload):
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        known = {"design", "verilog", "model", "seed", "scale",
                 "deadline_ms", "include_slack", "no_cache", "request_id"}
        unknown = set(payload) - known
        if unknown:
            raise RequestError(f"unknown request fields: {sorted(unknown)}")
        kwargs = {k: payload[k] for k in known if k in payload}
        if not kwargs.get("request_id"):
            kwargs.pop("request_id", None)
        return cls(**kwargs)

    def validate(self):
        if bool(self.design) == bool(self.verilog):
            raise RequestError(
                "exactly one of 'design' or 'verilog' is required")
        if self.design is not None and not isinstance(self.design, str):
            raise RequestError("'design' must be a string")
        if self.verilog is not None and not isinstance(self.verilog, str):
            raise RequestError("'verilog' must be a string")
        if not isinstance(self.model, str) or not self.model:
            raise RequestError("'model' must be a non-empty string")
        try:
            self.seed = int(self.seed)
        except (TypeError, ValueError):
            raise RequestError("'seed' must be an integer")
        if self.scale is not None:
            try:
                self.scale = float(self.scale)
            except (TypeError, ValueError):
                raise RequestError("'scale' must be a number")
            if self.scale <= 0:
                raise RequestError("'scale' must be positive")
        if self.deadline_ms is not None:
            try:
                self.deadline_ms = float(self.deadline_ms)
            except (TypeError, ValueError):
                raise RequestError("'deadline_ms' must be a number")
            if self.deadline_ms < 0:
                raise RequestError("'deadline_ms' must be >= 0")
        self.include_slack = bool(self.include_slack)
        self.no_cache = bool(self.no_cache)
        return self

    def remaining_s(self):
        """Seconds left before the deadline; None when unbounded."""
        if self.deadline_ms is None:
            return None
        elapsed = time.perf_counter() - self.created_at
        return self.deadline_ms / 1000.0 - elapsed


@dataclass
class PredictResponse:
    """One prediction answer (JSON-serializable via :meth:`to_dict`)."""

    request_id: str
    design: str
    model: str
    model_version: str
    kind: str
    degraded: bool
    cache_hit: bool
    batch_size: int
    latency_ms: float
    prediction: dict
    graph_version: int = 0   # 0 = the pristine base graph
    num_edits: int = 0       # edits applied by this (delta) request

    def to_dict(self):
        return {"request_id": self.request_id, "design": self.design,
                "model": self.model, "model_version": self.model_version,
                "kind": self.kind, "degraded": self.degraded,
                "cache_hit": self.cache_hit, "batch_size": self.batch_size,
                "latency_ms": round(self.latency_ms, 3),
                "graph_version": self.graph_version,
                "num_edits": self.num_edits,
                "prediction": self.prediction}


def _timing_payload(graph, arrival, include_slack):
    """Summary of endpoint slack derived from (predicted) arrivals."""
    slack = slack_from_arrival(graph, arrival)   # (endpoints, 4) normalized
    hold = slack[:, 0:2] * TIME_SCALE
    setup = slack[:, 2:4] * TIME_SCALE
    payload = {
        "num_endpoints": int(len(slack)),
        "clock_period_ps": round(float(graph.clock_period), 3),
        "wns_setup_ps": round(float(np.nanmin(setup)), 3),
        "tns_setup_ps": round(float(np.minimum(setup, 0.0)
                                    .min(axis=1).sum()), 3),
        "wns_hold_ps": round(float(np.nanmin(hold)), 3),
        "tns_hold_ps": round(float(np.minimum(hold, 0.0)
                                   .min(axis=1).sum()), 3),
    }
    if include_slack:
        payload["endpoint_setup_slack_ps"] = [
            round(float(v), 3) for v in setup.min(axis=1)]
        payload["endpoint_hold_slack_ps"] = [
            round(float(v), 3) for v in hold.min(axis=1)]
    return payload


def _netdelay_payload(graph, net_delay):
    sinks = graph.is_net_sink.astype(bool)
    delays = np.asarray(net_delay)[sinks] * TIME_SCALE
    return {
        "num_net_sinks": int(sinks.sum()),
        "mean_net_delay_ps": round(float(delays.mean()), 3) if len(delays)
        else 0.0,
        "max_net_delay_ps": round(float(delays.max()), 3) if len(delays)
        else 0.0,
    }


class PredictionService:
    """The serving core; thread-safe, transport-agnostic."""

    def __init__(self, registry=None, scale=None,
                 graph_cache_size=64, result_cache_size=1024,
                 batch_window_ms=2.0, max_batch=16, metrics=None,
                 delta_session_cache_size=8):
        self.registry = registry or ModelRegistry(scale=scale)
        self._scale = scale
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.graph_cache = LRUCache(graph_cache_size,
                                    registry=self.metrics, name="graph")
        self.result_cache = LRUCache(result_cache_size,
                                     registry=self.metrics, name="result")
        # Live ECO edit sessions, one per base graph key (predict_delta).
        self.delta_sessions = LRUCache(delta_session_cache_size,
                                       registry=self.metrics,
                                       name="delta_session")
        self._batch_window_ms = float(batch_window_ms)
        self._max_batch = int(max_batch)
        self._batchers = {}
        self._lock = threading.Lock()
        self._tracer = get_tracer()
        self._latency = self.metrics.histogram(
            "repro_request_latency_ms",
            "End-to-end /predict latency in milliseconds.",
            quantiles=(0.5, 0.9, 0.99))
        self._counters = {
            "requests": self.metrics.counter(
                "repro_requests_total", "Prediction requests received."),
            "errors": self.metrics.counter(
                "repro_request_errors_total",
                "Requests rejected as invalid (4xx)."),
            "degraded": self.metrics.counter(
                "repro_requests_degraded_total",
                "Responses answered from the ground-truth STA fallback."),
            "deadline_fallbacks": self.metrics.counter(
                "repro_deadline_fallbacks_total",
                "Degradations caused by an expired request deadline."),
            "model_fallbacks": self.metrics.counter(
                "repro_model_fallbacks_total",
                "Degradations caused by a model that failed to load."),
            "shed": self.metrics.counter(
                "repro_requests_shed_total",
                "Requests shed by admission control (503 Overloaded)."),
            "delta_requests": self.metrics.counter(
                "repro_delta_requests_total",
                "Incremental (/predict/delta) requests received."),
            "delta_edits": self.metrics.counter(
                "repro_delta_edits_total",
                "ECO edits applied through the delta path."),
        }
        self._delta_dirty = self.metrics.histogram(
            "repro_delta_dirty_nodes",
            "Dirty-frontier size (nodes re-predicted) per delta refresh.",
            quantiles=(0.5, 0.9, 0.99))
        # Rolling latency SLO: good = answered within the objective
        # (REPRO_SLO_LATENCY_MS); sheds and unexpected faults are bad,
        # client errors (4xx) are excluded.  Surfaced by /healthz.
        self.slo = SloTracker()
        # Shadow-STA auditor (REPRO_AUDIT_RATE > 0 enables): samples
        # served predictions off the request path and scores them
        # against the graph's ground-truth labels.
        self.quality = QualityMonitor(registry=self.metrics)
        self._started_at = time.time()

    # -- graph resolution -------------------------------------------------------
    def _effective_scale(self, request):
        if request.scale is not None:
            return request.scale
        if self._scale is not None:
            return self._scale
        from ..experiments.common import experiment_scale
        return experiment_scale()

    def _graph_key(self, request):
        """Content key of the placed netlist this request refers to.

        Benchmark requests hash the generator identity (name, scale,
        seed) — cheap and exactly as collision-free as the generator is
        deterministic.  Inline-netlist requests hash the Verilog source
        plus the placement seed.
        """
        if request.design:
            ident = (f"bench:{request.design}:s{self._effective_scale(request):g}"
                     f":seed{request.seed}")
        else:
            digest = hashlib.sha256(request.verilog.encode()).hexdigest()
            ident = f"verilog:{digest}:seed{request.seed}"
        return hashlib.sha256(ident.encode()).hexdigest()[:16]

    def _build_graph(self, request):
        """Run the physical flow and extract the dataset graph.

        The extraction necessarily runs ground-truth STA, so every
        cached graph carries the labels the degraded path answers from.
        """
        from ..flow import Flow
        if request.design:
            from ..netlist import benchmark_names
            if request.design not in benchmark_names():
                raise RequestError(f"unknown design {request.design!r}",
                                   status=404)
            flow = Flow.from_benchmark(request.design,
                                       scale=self._effective_scale(request))
        else:
            try:
                flow = Flow.from_verilog(request.verilog)
            except Exception as exc:
                raise RequestError(f"invalid verilog netlist: {exc}")
        flow.place(seed=request.seed)
        return flow.extract()

    def resolve_graph(self, request):
        """(graph, key, cache_hit) for the request's design."""
        key = self._graph_key(request)
        graph, hit = self.graph_cache.get_or_create(
            key, lambda: self._build_graph(request))
        return graph, key, hit

    # -- batched model execution ------------------------------------------------
    def _batcher_for(self, entry):
        batcher_key = (entry.name, entry.version)
        with self._lock:
            batcher = self._batchers.get(batcher_key)
            if batcher is None:
                batcher = MicroBatcher(
                    runner=entry.model.predict_batch,
                    window_s=self._batch_window_ms / 1000.0,
                    max_batch=self._max_batch, name=entry.name,
                    registry=self.metrics)
                self._batchers[batcher_key] = batcher
            return batcher

    # -- payload assembly -------------------------------------------------------
    @staticmethod
    def _model_payload(entry, graph, output, include_slack):
        if entry.kind == "timing":
            return _timing_payload(graph, output["arrival"], include_slack)
        return _netdelay_payload(graph, output["net_delay"])

    @staticmethod
    def _truth_payload(kind, graph, include_slack):
        if kind == "timing":
            return _timing_payload(graph, graph.arrival, include_slack)
        return _netdelay_payload(graph, graph.net_delay)

    def _bump(self, counter):
        self._counters[counter].inc()

    # -- the entry point --------------------------------------------------------
    def predict(self, request):
        """Answer one request; safe to call from many threads at once."""
        self._bump("requests")
        with self._tracer.span("serve.predict") as span:
            try:
                if isinstance(request, dict):
                    request = PredictRequest.from_dict(request)
                span.set(request_id=request.request_id,
                         model=request.model,
                         design=request.design or "<verilog>")
                response = self._predict(request.validate())
            except Overloaded as exc:
                self._bump("shed")
                self.slo.record(None, ok=False)
                span.set(error=str(exc), shed=True)
                raise
            except RequestError as exc:
                self._bump("errors")
                span.set(error=str(exc))
                raise
            response.latency_ms = ((time.perf_counter()
                                    - request.created_at) * 1000.0)
            self._latency.observe(response.latency_ms)
            self.slo.record(response.latency_ms)
            if response.degraded:
                self._bump("degraded")
            span.set(degraded=response.degraded,
                     cache_hit=response.cache_hit,
                     batch_size=response.batch_size)
        return response

    def _predict(self, request):
        graph, key, _graph_hit = self.resolve_graph(request)
        design_name = request.design or graph.name

        # Model resolution; a broken checkpoint degrades rather than 500s.
        kind = DEFAULT_KIND = "timing"
        entry = None
        try:
            entry = self.registry.get(request.model)
            kind = entry.kind
        except KeyError:
            raise RequestError(f"unknown model {request.model!r}",
                               status=404)
        except ModelLoadError:
            self._bump("model_fallbacks")
            return PredictResponse(
                request_id=request.request_id, design=design_name,
                model=request.model, model_version="unavailable",
                kind=DEFAULT_KIND, degraded=True, cache_hit=False,
                batch_size=0, latency_ms=0.0,
                prediction=self._truth_payload(DEFAULT_KIND, graph,
                                               request.include_slack))

        # Payloads are keyed by (graph key, graph VERSION): whole-graph
        # requests always answer for the pristine base (version 0) — the
        # shared cache entry is never mutated by edits — while delta
        # payloads carry their session's nonce + version (below), so a
        # post-edit prediction can never be served from a pre-edit entry
        # or vice versa.
        result_key = (entry.name, entry.version, key, 0,
                      bool(request.include_slack))
        cached = None if request.no_cache \
            else self.result_cache.get(result_key)
        if cached is not None:
            return PredictResponse(
                request_id=request.request_id, design=design_name,
                model=entry.name, model_version=entry.version, kind=kind,
                degraded=False, cache_hit=True, batch_size=0,
                latency_ms=0.0, prediction=cached)

        remaining = request.remaining_s()
        if remaining is not None and remaining <= 0:
            self._bump("deadline_fallbacks")
            return self._degraded_response(request, entry, graph,
                                           design_name)

        try:
            payload, batch_size = self._execute(entry, key, graph, request)
        except BatchTimeout:
            self._bump("deadline_fallbacks")
            return self._degraded_response(request, entry, graph,
                                           design_name)

        if not request.no_cache:
            self.result_cache.put(result_key, payload)
        return PredictResponse(
            request_id=request.request_id, design=design_name,
            model=entry.name, model_version=entry.version, kind=kind,
            degraded=False, cache_hit=False, batch_size=batch_size,
            latency_ms=0.0, prediction=payload)

    def _execute(self, entry, key, graph, request):
        """Run the model for one request; returns ``(payload, batch_size)``.

        The in-process implementation goes through the per-model
        :class:`MicroBatcher`; the pooled subclass
        (:class:`repro.serving.pool.PooledPredictionService`) overrides
        this to dispatch to a worker process instead.  Raises
        :class:`BatchTimeout` when the request's deadline expires first.
        """
        batcher = self._batcher_for(entry)
        output, batch_size = batcher.submit(key, graph,
                                            timeout=request.remaining_s())
        payload = self._model_payload(entry, graph, output,
                                      request.include_slack)
        if entry.kind == "timing":
            self.quality.maybe_audit(
                graph, output["arrival"], model=entry.name,
                request_id=request.request_id, profile=entry.profile)
        return payload, batch_size

    # -- the delta entry point --------------------------------------------------
    def delta_session(self, design, seed=1, scale=None):
        """The live edit session for a base graph (created on first use)."""
        from .delta import DeltaRequest
        request = DeltaRequest(design=design, seed=seed,
                               scale=scale).validate()
        return self._session_for(request, self._graph_key(request))

    def _session_for(self, request, key):
        from .delta import DeltaSession
        scale = self._effective_scale(request)
        session, _hit = self.delta_sessions.get_or_create(
            key, lambda: DeltaSession(request.design, request.seed,
                                      scale, key))
        return session

    def predict_delta(self, request):
        """Apply an ECO edit list to a live session and re-predict.

        Cone-limited: only the levels/segments downstream of the touched
        pins re-execute (see :mod:`repro.serving.delta`).  Accepts the
        same dict-or-dataclass calling convention as :meth:`predict`.
        """
        from .delta import DeltaRequest
        self._bump("requests")
        self._bump("delta_requests")
        with self._tracer.span("serve.predict_delta") as span:
            try:
                if isinstance(request, dict):
                    request = DeltaRequest.from_dict(request)
                span.set(request_id=request.request_id,
                         model=request.model,
                         design=request.design or "<missing>",
                         edits=len(request.edits)
                         if isinstance(request.edits, list) else 0)
                response = self._predict_delta(request.validate(), span)
            except Overloaded as exc:
                self._bump("shed")
                self.slo.record(None, ok=False)
                span.set(error=str(exc), shed=True)
                raise
            except RequestError as exc:
                self._bump("errors")
                span.set(error=str(exc))
                raise
            response.latency_ms = ((time.perf_counter()
                                    - request.created_at) * 1000.0)
            self._latency.observe(response.latency_ms)
            self.slo.record(response.latency_ms)
            if response.degraded:
                self._bump("degraded")
            span.set(degraded=response.degraded,
                     cache_hit=response.cache_hit,
                     graph_version=response.graph_version)
        return response

    def _predict_delta(self, request, span):
        from ..graphdata.patch import EditError, parse_edits
        # Resolve (and warm) the base graph exactly as /predict would;
        # this validates the design name and pins the shard key the
        # pooled tier routes by.  The cached base graph itself is never
        # mutated — the session owns a private rebuild.
        _graph, key, _hit = self.resolve_graph(request.base_request())
        try:
            edits = parse_edits(request.edits)
        except EditError as exc:
            raise RequestError(str(exc))

        entry = None
        try:
            entry = self.registry.get(request.model)
        except KeyError:
            raise RequestError(f"unknown model {request.model!r}",
                               status=404)
        except ModelLoadError:
            self._bump("model_fallbacks")

        session = self._session_for(request, key)
        with session.lock:
            if edits:
                self._counters["delta_edits"].inc(len(edits))
                try:
                    session.apply(edits)
                except EditError as exc:
                    # Edits apply in order; a mid-list failure leaves the
                    # session at the last good version (reported below).
                    raise RequestError(
                        f"{exc} (session at version {session.version})")
            span.set(graph_version=session.version)

            if entry is None:
                # Broken checkpoint: answer from the session's ground
                # truth (the patcher keeps its labels in sync per edit).
                return PredictResponse(
                    request_id=request.request_id, design=request.design,
                    model=request.model, model_version="unavailable",
                    kind="timing", degraded=True, cache_hit=False,
                    batch_size=0, latency_ms=0.0,
                    graph_version=session.version, num_edits=len(edits),
                    prediction=self._truth_payload(
                        "timing", session.hetero, request.include_slack))

            result_key = (entry.name, entry.version, key, session.nonce,
                          session.version, bool(request.include_slack),
                          "delta")
            cached = None if request.no_cache \
                else self.result_cache.get(result_key)
            if cached is not None:
                return PredictResponse(
                    request_id=request.request_id, design=request.design,
                    model=entry.name, model_version=entry.version,
                    kind=entry.kind, degraded=False, cache_hit=True,
                    batch_size=0, latency_ms=0.0,
                    graph_version=session.version, num_edits=len(edits),
                    prediction=cached)

            remaining = request.remaining_s()
            if remaining is not None and remaining <= 0:
                self._bump("deadline_fallbacks")
                return PredictResponse(
                    request_id=request.request_id, design=request.design,
                    model=entry.name, model_version=entry.version,
                    kind=entry.kind, degraded=True, cache_hit=False,
                    batch_size=0, latency_ms=0.0,
                    graph_version=session.version, num_edits=len(edits),
                    prediction=self._truth_payload(
                        entry.kind, session.hetero, request.include_slack))

            try:
                payload, batch_size = self._execute_delta(entry, key,
                                                          session, request)
            except BatchTimeout:
                self._bump("deadline_fallbacks")
                return PredictResponse(
                    request_id=request.request_id, design=request.design,
                    model=entry.name, model_version=entry.version,
                    kind=entry.kind, degraded=True, cache_hit=False,
                    batch_size=0, latency_ms=0.0,
                    graph_version=session.version, num_edits=len(edits),
                    prediction=self._truth_payload(
                        entry.kind, session.hetero, request.include_slack))
            if not request.no_cache:
                self.result_cache.put(result_key, payload)
            return PredictResponse(
                request_id=request.request_id, design=request.design,
                model=entry.name, model_version=entry.version,
                kind=entry.kind, degraded=False, cache_hit=False,
                batch_size=batch_size, latency_ms=0.0,
                graph_version=session.version, num_edits=len(edits),
                prediction=payload)

    def _execute_delta(self, entry, key, session, request):
        """Cone-limited forward for one delta request (session locked).

        The pooled subclass overrides this to ship the edit stream to
        the worker owning the base graph's shard instead.
        """
        with self._tracer.span("serve.delta_forward") as span:
            if entry.kind == "timing":
                state, stats = session.refresh(entry)
                self._delta_dirty.observe(stats["dirty_nodes"])
                span.set(full=stats["full"],
                         dirty_nodes=stats["dirty_nodes"])
                payload = _timing_payload(session.hetero, state.arrival,
                                          request.include_slack)
            else:
                net_delay = session.netdelay(entry)
                span.set(full=True,
                         dirty_nodes=session.hetero.num_nodes)
                payload = _netdelay_payload(session.hetero, net_delay)
        return payload, 1

    def _degraded_response(self, request, entry, graph, design_name):
        return PredictResponse(
            request_id=request.request_id, design=design_name,
            model=entry.name, model_version=entry.version,
            kind=entry.kind, degraded=True, cache_hit=False,
            batch_size=0, latency_ms=0.0,
            prediction=self._truth_payload(entry.kind, graph,
                                           request.include_slack))

    # -- introspection ----------------------------------------------------------
    def models(self):
        return self.registry.describe()

    def healthz(self):
        quality = self.quality.healthz()
        return {"status": "ok" if quality["ok"] else "degraded",
                "uptime_s": round(time.time() - self._started_at, 1),
                "slo": self.slo.summary(),
                "quality": quality}

    def stats(self):
        """JSON stats view — a projection of :attr:`metrics`, so it can
        never disagree with the Prometheus ``/metrics`` endpoint."""
        with self._lock:
            batchers = {name: b.stats()
                        for (name, _v), b in self._batchers.items()}
        latency = self._latency.snapshot()
        return {
            "counts": {key: int(counter.value)
                       for key, counter in self._counters.items()},
            "latency": {"count": latency["count"],
                        "p50_ms": round(latency["p50"], 3),
                        "p99_ms": round(latency["p99"], 3),
                        "mean_ms": round(latency["mean"], 3)},
            "graph_cache": self.graph_cache.stats(),
            "result_cache": self.result_cache.stats(),
            "batching": batchers,
            "workers": 0,
            "batch_max": max((b["max_batch"] for b in batchers.values()),
                             default=0),
            "uptime_s": round(time.time() - self._started_at, 1),
            "slo": self.slo.summary(),
            "quality": self.quality.stats(),
        }

    def metrics_text(self):
        """Prometheus text exposition: this service's registry plus the
        process-wide default (flow/STA/training instrumentation)."""
        parts = [self.metrics.render_prometheus()]
        default = get_registry()
        if default is not self.metrics:
            parts.append(default.render_prometheus())
        return "".join(parts)

    def warm(self, models=(), designs=()):
        """Eagerly load models and extract design graphs (pre-traffic)."""
        for name in models:
            self.registry.get(name)
        for design in designs:
            self.resolve_graph(PredictRequest(design=design).validate())

    def close(self):
        self.quality.close()
        with self._lock:
            batchers = list(self._batchers.values())
            self._batchers.clear()
        for batcher in batchers:
            batcher.close()
