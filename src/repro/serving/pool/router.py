"""Front-end router of the pre-fork serving pool.

:class:`PoolRouter` is the parent-process half of ``repro.serving.pool``:
it owns the worker processes, the shared-memory arena their model and
graph state lives in, and the dispatch/response plumbing in between.

Responsibilities, in dispatch order:

* **publication** — :meth:`ensure_model` / :meth:`ensure_graph` copy a
  model's parameters or a design's :class:`HeteroGraph` arrays into the
  :class:`~repro.parallel.shm.ShmArena` exactly once; workers attach
  zero-copy.  Graph segments sit in a bounded LRU so long-running
  servers don't accumulate unbounded ``/dev/shm``;
* **admission control** — each worker shard has a bounded pending
  window; past the ``watermark`` the router sheds with
  :class:`~repro.serving.service.Overloaded` (HTTP 503) instead of
  queueing unboundedly;
* **sharding** — requests hash by graph key to a fixed worker, so
  concurrent requests for one design coalesce in that worker's
  micro-batch and its graph attachment is reused;
* **deadlines** — propagated as absolute wall-clock timestamps; the
  worker drops expired items, the parent also times out its ticket and
  degrades (both surface as :class:`~repro.serving.batching.BatchTimeout`);
* **health** — a monitor thread watches ``Process.is_alive`` plus a
  shared heartbeat array; a dead worker is restarted, its model
  publications replayed, and its in-flight tickets re-dispatched (at
  most ``retries`` extra attempts each, mirroring
  :class:`~repro.parallel.ParallelExecutor`'s crash discipline).
"""

from __future__ import annotations

import itertools
import threading
import time
import zlib
from collections import OrderedDict

from ...graphdata.hetero import HeteroGraph
from ...obs import get_logger
from ...obs.fleet import FleetAggregator, merge_sketches, sketch_quantile
from ...obs.tracing import get_tracer
from ...parallel import ShmArena, pick_start_method
from ..batching import BatchTimeout
from ..service import Overloaded
from .worker import (MSG_CRASH, MSG_DELTA, MSG_MODEL, MSG_PREDICT,
                     MSG_STOP, POOLABLE_CLASSES, R_BATCH, R_ERR,
                     R_EXPIRED, R_MODEL_ERR, R_OK, R_READY, worker_main)

__all__ = ["PoolRouter", "PoolError", "NotPoolable", "PoolCrashError"]

_log = get_logger("repro.pool")


class PoolError(RuntimeError):
    """The pool could not answer this request (non-request fault)."""


class NotPoolable(PoolError):
    """This model cannot run in pool workers (serve it in-process)."""


class PoolCrashError(PoolError):
    """A request's worker crashed more times than the retry budget."""


class _Ticket:
    """Parent-side state of one in-flight pooled request."""

    __slots__ = ("req_id", "worker_id", "message", "attempts", "event",
                 "payload", "batch_size", "error", "crashed", "expired",
                 "spans")

    def __init__(self, req_id, worker_id, message):
        self.req_id = req_id
        self.worker_id = worker_id
        self.message = message
        self.attempts = 1
        self.event = threading.Event()
        self.payload = None
        self.batch_size = 0
        self.error = None
        self.crashed = False
        self.expired = False
        self.spans = []


class _WorkerHandle:
    """One worker slot: the live process plus its cumulative stats."""

    __slots__ = ("worker_id", "process", "request_q", "ready", "pid",
                 "restarts", "completed", "batches", "batched_items",
                 "batch_max")

    def __init__(self, worker_id):
        self.worker_id = worker_id
        self.process = None
        self.request_q = None
        self.ready = threading.Event()
        self.pid = None
        self.restarts = 0
        self.completed = 0
        self.batches = 0
        self.batched_items = 0
        self.batch_max = 0

    def stats(self):
        mean = (self.batched_items / self.batches) if self.batches else 0.0
        return {"worker": self.worker_id, "pid": self.pid,
                "alive": bool(self.process and self.process.is_alive()),
                "restarts": self.restarts, "completed": self.completed,
                "batches": self.batches, "batched_items": self.batched_items,
                "batch_max": self.batch_max, "mean_batch": round(mean, 3)}


class PoolRouter:
    """Dispatch predictions onto a pre-forked pool of worker processes."""

    def __init__(self, workers=2, window_s=0.002, max_batch=16,
                 watermark=32, retries=1, graph_slots=64,
                 health_interval_s=0.2, heartbeat_timeout_s=None,
                 kernels=None, metrics=None, start_timeout_s=60.0,
                 stats_interval_s=0.25):
        if workers < 1:
            raise ValueError("pool needs at least one worker")
        self.workers = int(workers)
        self.watermark = int(watermark)
        self.retries = int(retries)
        self.graph_slots = int(graph_slots)
        self._health_interval = float(health_interval_s)
        self._heartbeat_timeout = heartbeat_timeout_s
        self._start_timeout = float(start_timeout_s)
        self._options = {"window_s": float(window_s),
                         "max_batch": int(max_batch),
                         "kernels": kernels,
                         "stats_interval_s": float(stats_interval_s)}
        self.fleet = FleetAggregator(
            max_age_s=max(20.0 * float(stats_interval_s), 5.0))
        self.arena = ShmArena()
        self._lock = threading.Lock()
        self._handles = []
        self._tickets = {}            # req_id -> _Ticket
        self._pending = [0] * self.workers
        self._models = OrderedDict()  # name -> (version, segment, spec)
        self._graphs = OrderedDict()  # graph key -> segment (LRU)
        self._seq = itertools.count(1)
        self._closing = threading.Event()
        self._stopped = threading.Event()   # receiver runs through drain
        self._restart_count = 0
        self._shed_count = 0
        self._started = False

        import multiprocessing
        self._ctx = multiprocessing.get_context(pick_start_method())

        if metrics is not None:
            self._g_busy = metrics.gauge(
                "repro_pool_busy_workers",
                "Pool workers with at least one in-flight request.")
            self._g_depth = metrics.gauge(
                "repro_pool_queue_depth",
                "In-flight pooled requests across all worker shards.")
            self._g_shm = metrics.gauge(
                "repro_pool_shm_bytes",
                "Bytes of shared-memory segments the pool has published.")
            self._c_restarts = metrics.counter(
                "repro_pool_restarts_total",
                "Worker processes restarted after a crash or hang.")
            self._h_batch = metrics.histogram(
                "repro_pool_batch_size",
                "Items per pooled model forward.",
                quantiles=(0.5, 0.9, 0.99))
            self._c_requests = metrics.counter(
                "repro_pool_requests_total",
                "Requests dispatched to pool workers (admitted requests "
                "plus crash re-dispatches).")
        else:
            self._g_busy = self._g_depth = self._g_shm = None
            self._c_restarts = self._h_batch = self._c_requests = None

    # -- lifecycle --------------------------------------------------------------
    def start(self):
        """Fork the workers and wait until every one reports ready."""
        with self._lock:
            if self._started:
                return self
            self._started = True
            self._response_q = self._ctx.Queue()
            self._stats_q = self._ctx.Queue()
            self._heartbeat = self._ctx.Array("d", self.workers, lock=False)
            self._handles = [_WorkerHandle(i) for i in range(self.workers)]
            for handle in self._handles:
                self._spawn(handle)
        self._receiver = threading.Thread(target=self._receive_loop,
                                          name="pool-recv", daemon=True)
        self._receiver.start()
        self._monitor = threading.Thread(target=self._health_loop,
                                         name="pool-health", daemon=True)
        self._monitor.start()
        self._stats_thread = threading.Thread(target=self._stats_loop,
                                              name="pool-stats", daemon=True)
        self._stats_thread.start()
        deadline = time.monotonic() + self._start_timeout
        for handle in self._handles:
            if not handle.ready.wait(max(0.0, deadline - time.monotonic())):
                self.close(drain_s=0.0)
                raise PoolError(f"worker {handle.worker_id} failed to "
                                f"start within {self._start_timeout:g}s")
        return self

    def _spawn(self, handle):
        """(Re)create the process behind a handle. Caller holds the lock."""
        handle.request_q = self._ctx.Queue()
        handle.ready.clear()
        handle.process = self._ctx.Process(
            target=worker_main, name=f"pool-worker-{handle.worker_id}",
            args=(handle.worker_id, handle.request_q, self._response_q,
                  self._heartbeat, self._options, self._stats_q),
            daemon=True)
        self._heartbeat[handle.worker_id] = time.time()
        handle.process.start()
        # Replay every published model so the fresh worker can serve the
        # same catalogue its predecessor could.
        for name, (version, segment, spec) in self._models.items():
            handle.request_q.put((MSG_MODEL, name, version, segment, spec))

    def close(self, drain_s=5.0):
        """Drain in-flight requests, stop workers, release all shm.

        Pool gauges are explicitly zeroed on every close path: a
        ``/metrics`` scrape taken after shutdown must not report phantom
        busy workers or queue depth (the registry outlives the pool).
        """
        if not self._started or self._closing.is_set():
            self.arena.close_all()
            self._zero_gauges()
            return
        self._closing.set()
        deadline = time.monotonic() + max(0.0, drain_s)
        while time.monotonic() < deadline:
            with self._lock:
                if not self._tickets:
                    break
            time.sleep(0.02)
        with self._lock:
            leftovers = list(self._tickets.values())
            self._tickets.clear()
            self._pending = [0] * self.workers
            handles = list(self._handles)
        for ticket in leftovers:
            ticket.error = "pool shutting down"
            ticket.event.set()
        for handle in handles:
            try:
                handle.request_q.put((MSG_STOP,))
            except (OSError, ValueError):
                pass
        for handle in handles:
            if handle.process is None:
                continue
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=1.0)
            try:
                handle.request_q.close()
                handle.request_q.cancel_join_thread()
            except (OSError, ValueError):
                pass
        self._stopped.set()
        for thread in (getattr(self, "_receiver", None),
                       getattr(self, "_monitor", None),
                       getattr(self, "_stats_thread", None)):
            if thread is not None:
                thread.join(timeout=2.0)
        for q in (self._response_q, getattr(self, "_stats_q", None)):
            if q is None:
                continue
            try:
                q.close()
                q.cancel_join_thread()
            except (OSError, ValueError):
                pass
        self.arena.close_all()
        self._zero_gauges()

    # -- publication ------------------------------------------------------------
    def ensure_model(self, entry):
        """Publish a registry entry's weights to the arena + all workers.

        Idempotent per (name, version).  Raises :class:`NotPoolable` for
        models the workers cannot rebuild from a spec — the caller
        should serve those in-process.
        """
        cls = type(entry.model).__name__
        if cls not in POOLABLE_CLASSES or \
                not hasattr(entry.model, "named_parameters") or \
                not hasattr(entry.model, "cfg"):
            raise NotPoolable(f"model {entry.name!r} ({cls}) cannot run "
                              f"in pool workers")
        with self._lock:
            known = self._models.get(entry.name)
            if known is not None and known[0] == entry.version:
                return known[1]
            arrays = {name: param.data
                      for name, param in entry.model.named_parameters()}
            spec = {"kind": entry.kind, "cls": cls,
                    "config": entry.model.cfg}
            segment = self.arena.publish(
                f"model:{entry.name}:{entry.version}", arrays,
                meta={"model": entry.name, "version": entry.version})
            self._models[entry.name] = (entry.version, segment, spec)
            for handle in self._handles:
                try:
                    handle.request_q.put((MSG_MODEL, entry.name,
                                          entry.version, segment, spec))
                except (OSError, ValueError):
                    pass
        self._update_gauges()
        return segment

    def ensure_graph(self, key, graph):
        """Publish one design's arrays (LRU-bounded); return the segment."""
        with self._lock:
            segment = self._graphs.get(key)
            if segment is not None:
                self._graphs.move_to_end(key)
                return segment
            arrays = {name: getattr(graph, name)
                      for name in HeteroGraph._ARRAY_FIELDS}
            meta = {"name": graph.name, "split": graph.split,
                    "clock_period": float(graph.clock_period)}
            segment = self.arena.publish(f"graph:{key}", arrays, meta=meta)
            self._graphs[key] = segment
            evicted = []
            while len(self._graphs) > self.graph_slots:
                old_key, _old_segment = self._graphs.popitem(last=False)
                evicted.append(old_key)
        for old_key in evicted:
            self.arena.unpublish(f"graph:{old_key}")
        self._update_gauges()
        return segment

    # -- dispatch ---------------------------------------------------------------
    def shard(self, key):
        return zlib.crc32(str(key).encode()) % self.workers

    def submit(self, model_name, key, segment, include_slack=False,
               timeout=None):
        """Run one prediction on the pool; returns (payload, batch_size).

        Raises :class:`Overloaded` when the target shard is past the
        admission watermark, :class:`BatchTimeout` when the deadline
        expires first, :class:`PoolError` for worker-side faults.
        """
        if self._closing.is_set():
            raise PoolError("pool is shut down")
        worker_id = self.shard(key)
        deadline_ts = time.time() + timeout if timeout is not None else None
        tracer = get_tracer()
        with tracer.span("pool.submit", worker=worker_id,
                         model=model_name, graph=str(key)) as sp:
            # Distributed trace context: the worker parents its span
            # records under this pool.submit span, so the stitched
            # timeline reads queue wait -> attach -> forward end to end.
            ctx = self._trace_ctx(sp)
            ticket, handle = self._admit(
                worker_id, lambda req_id: (
                    MSG_PREDICT, req_id, model_name, key, segment,
                    bool(include_slack), deadline_ts, ctx))
            return self._await(ticket, handle, timeout, tracer, sp)

    def submit_delta(self, model_name, key, spec, edits,
                     include_slack=False, timeout=None):
        """Run one incremental (delta) prediction on ``key``'s shard.

        Delta sessions are worker-local mutable state; sharding by base
        graph key pins every edit stream for one design to the worker
        that holds its session.  ``spec`` is ``{design, seed, scale,
        version}`` — the session identity plus the parent's post-apply
        version the worker must land on (see ``PoolWorker``); a worker
        that cannot reach it raises :class:`PoolError` here and the
        caller answers from its in-process session.
        """
        if self._closing.is_set():
            raise PoolError("pool is shut down")
        worker_id = self.shard(key)
        deadline_ts = time.time() + timeout if timeout is not None else None
        tracer = get_tracer()
        with tracer.span("pool.submit_delta", worker=worker_id,
                         model=model_name, graph=str(key),
                         edits=len(edits)) as sp:
            ctx = self._trace_ctx(sp)
            ticket, handle = self._admit(
                worker_id, lambda req_id: (
                    MSG_DELTA, req_id, model_name, key, dict(spec),
                    list(edits), bool(include_slack), deadline_ts, ctx))
            return self._await(ticket, handle, timeout, tracer, sp)

    @staticmethod
    def _trace_ctx(sp):
        trace_id = getattr(sp, "trace_id", None)
        return ((trace_id, getattr(sp, "span_id", None), time.time())
                if trace_id else None)

    def _admit(self, worker_id, build_message):
        """Admission control + ticket registration for one request."""
        with self._lock:
            if self._pending[worker_id] >= self.watermark:
                self._shed_count += 1
                raise Overloaded(
                    f"worker shard {worker_id} is over its admission "
                    f"watermark ({self.watermark} in flight)")
            req_id = next(self._seq)
            ticket = _Ticket(req_id, worker_id, build_message(req_id))
            self._tickets[req_id] = ticket
            self._pending[worker_id] += 1
            handle = self._handles[worker_id]
        return ticket, handle

    def _await(self, ticket, handle, timeout, tracer, sp):
        """Dispatch a registered ticket and wait for its resolution."""
        self._update_gauges()
        try:
            handle.request_q.put(ticket.message)
        except (OSError, ValueError) as exc:
            self._forget(ticket)
            raise PoolError(
                f"worker {ticket.worker_id} queue unavailable: {exc}")
        if self._c_requests is not None:
            self._c_requests.inc()
        if not ticket.event.wait(timeout):
            self._forget(ticket)
            raise BatchTimeout(
                f"pooled request {ticket.req_id} missed its deadline")
        if ticket.expired:
            raise BatchTimeout(
                f"pooled request {ticket.req_id} expired in worker "
                f"{ticket.worker_id}")
        if ticket.error is not None:
            if ticket.crashed:
                raise PoolCrashError(ticket.error)
            raise PoolError(ticket.error)
        if ticket.spans:
            tracer.ingest(ticket.spans)
        sp.set(batch_size=ticket.batch_size)
        return ticket.payload, ticket.batch_size

    def _forget(self, ticket):
        """Drop a ticket the caller stopped waiting for."""
        with self._lock:
            if self._tickets.pop(ticket.req_id, None) is not None:
                self._pending[ticket.worker_id] -= 1
        self._update_gauges()

    def inject_crash(self, worker_id):
        """Test hook: make one worker die mid-service (``os._exit``)."""
        self._handles[worker_id].request_q.put((MSG_CRASH,))

    # -- response plumbing ------------------------------------------------------
    def _receive_loop(self):
        import queue as _queue
        while not self._stopped.is_set():
            try:
                message = self._response_q.get(timeout=0.2)
            except _queue.Empty:
                continue
            except (OSError, EOFError, ValueError):
                return
            self._handle_response(message)

    def _handle_response(self, message):
        kind = message[0]
        if kind == R_OK:
            # Optional 5th element: worker-side span records (older
            # workers answer with the 4-tuple form).
            req_id, payload, batch_size = message[1:4]
            spans = message[4] if len(message) > 4 else []
            self._resolve(req_id, payload=payload, batch_size=batch_size,
                          spans=spans)
        elif kind == R_ERR:
            self._resolve(message[1], error=message[2])
        elif kind == R_EXPIRED:
            self._resolve(message[1], expired=True)
        elif kind == R_BATCH:
            _kind, worker_id, n_items, _n_graphs, _model = message
            with self._lock:
                handle = self._handles[worker_id]
                handle.batches += 1
                handle.batched_items += n_items
                handle.batch_max = max(handle.batch_max, n_items)
            if self._h_batch is not None:
                self._h_batch.observe(n_items)
        elif kind == R_READY:
            _kind, worker_id, pid = message
            with self._lock:
                handle = self._handles[worker_id]
                handle.pid = pid
            handle.ready.set()
        elif kind == R_MODEL_ERR:
            _log.warning("worker rejected model publication",
                         model=message[1], error=message[2])

    def _resolve(self, req_id, payload=None, batch_size=0, error=None,
                 expired=False, crashed=False, spans=None):
        with self._lock:
            ticket = self._tickets.pop(req_id, None)
            if ticket is None:
                return            # caller timed out and forgot the ticket
            self._pending[ticket.worker_id] -= 1
            if payload is not None:
                self._handles[ticket.worker_id].completed += 1
        ticket.payload = payload
        ticket.batch_size = batch_size
        ticket.error = error
        ticket.expired = expired
        ticket.crashed = crashed
        ticket.spans = list(spans or ())
        ticket.event.set()
        self._update_gauges()

    def _stats_loop(self):
        """Merge worker registry snapshots into the fleet aggregator.

        Runs through drain: ``_stopped`` is set only after the workers
        are joined, and each worker force-publishes a final snapshot on
        shutdown, so the loop does one last non-blocking sweep before
        exiting — post-close fleet totals include every request the
        workers ever answered.
        """
        import queue as _queue
        while True:
            try:
                item = self._stats_q.get(timeout=0.2)
            except _queue.Empty:
                if self._stopped.is_set():
                    break
                self.fleet.expire()
                continue
            except (OSError, EOFError, ValueError):
                return
            self._ingest_stats(item)
        time.sleep(0.05)           # let in-flight feeder writes land
        while True:
            try:
                self._ingest_stats(self._stats_q.get_nowait())
            except (_queue.Empty, OSError, EOFError, ValueError):
                return

    def _ingest_stats(self, item):
        try:
            worker_id, pid, ts, state = item
        except (TypeError, ValueError):
            return
        self.fleet.update(worker_id, state, pid=pid, ts=ts)

    # -- health / restart -------------------------------------------------------
    def _health_loop(self):
        while not self._closing.wait(self._health_interval):
            for handle in list(self._handles):
                process = handle.process
                if process is None or self._closing.is_set():
                    continue
                if not process.is_alive():
                    self._restart(handle, reason="exited")
                elif self._hung(handle):
                    process.terminate()
                    process.join(timeout=1.0)
                    self._restart(handle, reason="heartbeat timeout")

    def _hung(self, handle):
        if self._heartbeat_timeout is None:
            return False
        last = self._heartbeat[handle.worker_id]
        return last > 0 and (time.time() - last) > self._heartbeat_timeout

    def _restart(self, handle, reason):
        """Replace a dead worker and re-dispatch its in-flight tickets."""
        with self._lock:
            if self._closing.is_set() or handle.process is None or \
                    handle.process.is_alive():
                return
            exitcode = handle.process.exitcode
            try:
                handle.request_q.close()
                handle.request_q.cancel_join_thread()
            except (OSError, ValueError):
                pass
            handle.restarts += 1
            self._restart_count += 1
            # Fold the dead generation's counters into the fleet base
            # now; its replacement republishes under a fresh pid.
            self.fleet.retire(handle.worker_id)
            replay = [t for t in self._tickets.values()
                      if t.worker_id == handle.worker_id
                      and not t.event.is_set()]
            self._spawn(handle)
            failed = []
            for ticket in replay:
                ticket.attempts += 1
                if ticket.attempts > self.retries + 1:
                    failed.append(ticket)
                else:
                    try:
                        handle.request_q.put(ticket.message)
                        if self._c_requests is not None:
                            self._c_requests.inc()
                    except (OSError, ValueError):
                        failed.append(ticket)
            for ticket in failed:
                self._tickets.pop(ticket.req_id, None)
                self._pending[ticket.worker_id] -= 1
        if self._c_restarts is not None:
            self._c_restarts.inc()
        _log.warning("restarted pool worker", worker=handle.worker_id,
                     reason=reason, exitcode=exitcode,
                     redispatched=len(replay) - len(failed))
        for ticket in failed:
            ticket.error = (f"worker {handle.worker_id} crashed "
                            f"{ticket.attempts} times serving this request")
            ticket.crashed = True
            ticket.event.set()
        self._update_gauges()

    # -- introspection ----------------------------------------------------------
    def _update_gauges(self):
        if self._g_depth is None:
            return
        with self._lock:
            depth = sum(self._pending)
            busy = sum(1 for n in self._pending if n > 0)
        self._g_depth.set(depth)
        self._g_busy.set(busy)
        self._g_shm.set(self.arena.total_bytes())

    def _zero_gauges(self):
        if self._g_depth is None:
            return
        for gauge in (self._g_depth, self._g_busy, self._g_shm):
            gauge.set(0)

    def _worker_latency(self, worker_id):
        """Per-worker latency digest from the fleet-merged snapshots."""
        state = self.fleet.state_for(worker_id)
        entry = state.get("repro_worker_request_ms")
        sketch = merge_sketches([series["value"] for series
                                 in (entry or {}).get("series", ())])
        out = {}
        for q, field in ((0.5, "latency_p50_ms"), (0.99, "latency_p99_ms")):
            value = sketch_quantile(sketch, q)
            out[field] = round(0.0 if value != value else value, 3)
        count = sketch.get("count", 0)
        out["latency_mean_ms"] = round(sketch["sum"] / count, 3) \
            if count else 0.0
        requests = state.get("repro_worker_requests_total")
        out["requests"] = int(sum(series["value"] for series
                                  in (requests or {}).get("series", ())))
        return out

    def stats(self):
        with self._lock:
            per_worker = [handle.stats() for handle in self._handles]
            pending = sum(self._pending)
            restarts = self._restart_count
            shed = self._shed_count
            models = sorted(self._models)
            graphs = len(self._graphs)
        for row in per_worker:
            row.update(self._worker_latency(row["worker"]))
        batches = sum(w["batches"] for w in per_worker)
        items = sum(w["batched_items"] for w in per_worker)
        return {
            "workers": self.workers,
            "watermark": self.watermark,
            "pending": pending,
            "restarts": restarts,
            "shed": shed,
            "models": models,
            "graph_segments": graphs,
            "shm_bytes": self.arena.total_bytes(),
            "shm_segments": len(self.arena),
            "shm_entries": self.arena.entries(),
            "batch_max": max((w["batch_max"] for w in per_worker),
                             default=0),
            "mean_batch": round(items / batches, 3) if batches else 0.0,
            "per_worker": per_worker,
            "fleet": self.fleet.summary(),
        }
