"""Pre-fork multi-process serving tier with shared-memory state.

The pool splits serving across N predictor processes while paying for
model weights and extracted graphs exactly once:

    HTTP threads                 parent process              workers
    ------------                 --------------              -------
    /predict ──► PooledPredictionService
                    │  caches, deadlines, degradation (base class)
                    ▼
                 PoolRouter ──publish──► ShmArena ◄──attach (zero-copy)
                    │  admission control, sharding,      ▲
                    │  health checks, crash retry        │
                    ├──queue──► PoolWorker 0 ────────────┤
                    ├──queue──► PoolWorker 1 ────────────┤
                    └──queue──► PoolWorker N-1 ──────────┘
                                   (micro-batched forwards)

Pieces:

* :mod:`~repro.serving.pool.worker` — the per-process serve loop
  (attach shared state, window-drain micro-batching, payload assembly);
* :mod:`~repro.serving.pool.router` — parent-side dispatch: shm
  publication, watermark admission control, key-sharding, deadline
  propagation, heartbeat/restart supervision;
* :mod:`~repro.serving.pool.service` — the drop-in
  :class:`PredictionService` subclass the CLI and HTTP tier use when
  ``repro serve --workers N`` asks for a pool.
"""

from .router import NotPoolable, PoolCrashError, PoolError, PoolRouter
from .service import PooledPredictionService
from .worker import PoolWorker, worker_main

__all__ = ["PoolRouter", "PoolWorker", "PooledPredictionService",
           "PoolError", "NotPoolable", "PoolCrashError", "worker_main"]
