"""Pooled prediction service: the in-process core, dispatching to workers.

:class:`PooledPredictionService` keeps the entire
:class:`~repro.serving.service.PredictionService` contract — request
validation, graph/result caches, deadline degradation to ground-truth
STA, stats/metrics — and swaps only the model-execution step: instead of
running the forward pass on the calling thread through a
:class:`~repro.serving.batching.MicroBatcher`, it publishes the model
and graph to shared memory (once) and dispatches the request to a
:class:`~repro.serving.pool.router.PoolRouter` worker shard, where
requests from many front-end threads coalesce into real multi-item
batches.

Fallback ladder, from the router's failure modes:

* :class:`~repro.serving.pool.router.NotPoolable` — the model cannot be
  rebuilt in a worker (custom test doubles, broken checkpoints): serve
  it in-process exactly as the base class would;
* :class:`~repro.serving.pool.router.PoolError` (including crash-retry
  exhaustion) — pool fault, not a request fault: fall back to the
  in-process path so the caller still gets a real prediction;
* :class:`~repro.serving.service.Overloaded` — propagates (HTTP 503);
  shedding is the point of admission control, not a fault;
* :class:`~repro.serving.batching.BatchTimeout` — propagates; the base
  class turns it into the degraded ground-truth response.
"""

from __future__ import annotations

from ..service import PredictionService
from .router import NotPoolable, PoolError, PoolRouter

__all__ = ["PooledPredictionService"]


class PooledPredictionService(PredictionService):
    """PredictionService whose forwards run on a pre-fork worker pool."""

    def __init__(self, registry=None, scale=None, workers=2,
                 watermark=32, retries=1, graph_slots=64, kernels=None,
                 heartbeat_timeout_s=None, **kwargs):
        super().__init__(registry=registry, scale=scale, **kwargs)
        self.router = PoolRouter(
            workers=workers,
            window_s=self._batch_window_ms / 1000.0,
            max_batch=self._max_batch,
            watermark=watermark, retries=retries,
            graph_slots=graph_slots, kernels=kernels,
            heartbeat_timeout_s=heartbeat_timeout_s,
            metrics=self.metrics)
        self.router.start()

    # -- the one overridden step ------------------------------------------------
    def _execute(self, entry, key, graph, request):
        try:
            segment = self._publish(entry, key, graph)
            return self.router.submit(entry.name, key, segment,
                                      include_slack=request.include_slack,
                                      timeout=request.remaining_s())
        except NotPoolable:
            return super()._execute(entry, key, graph, request)
        except PoolError:
            # Worker-side fault (crash budget exhausted, queue torn
            # down): answer in-process rather than failing the request.
            return super()._execute(entry, key, graph, request)

    def _publish(self, entry, key, graph):
        self.router.ensure_model(entry)
        return self.router.ensure_graph(key, graph)

    def _execute_delta(self, entry, key, session, request):
        """Ship the edit stream to the worker pinned to ``key``'s shard.

        The parent session has already applied the edits (it is the
        source of truth), so ``spec.version`` is the post-apply version
        the worker's session must reach by applying the same edits.  Any
        pool fault — including a worker whose session is out of sync
        after a crash/restart — falls back to the in-process cone-limited
        forward on the parent session, which is always current.
        """
        from ...graphdata.patch import parse_edits
        try:
            self.router.ensure_model(entry)
            spec = {"design": session.design, "seed": session.seed,
                    "scale": session.scale, "version": session.version}
            return self.router.submit_delta(
                entry.name, key, spec, parse_edits(request.edits),
                include_slack=request.include_slack,
                timeout=request.remaining_s())
        except (NotPoolable, PoolError):
            return super()._execute_delta(entry, key, session, request)

    # -- introspection ----------------------------------------------------------
    def stats(self):
        """Parent stats merged with the fleet-aggregated worker view.

        Under the pool, forwards and graph attachments happen in worker
        processes whose registries the parent cannot read directly —
        naively reporting only the parent's counters silently inflates
        cache-hit ratios and drops every worker-side execution.  The
        worker columns here come from the fleet aggregator's merged
        snapshots, so for an identical request stream the merged totals
        equal what a single-process service would have reported (see
        tests/test_pool.py::TestFleetParity).
        """
        stats = super().stats()
        pool = self.router.stats()
        stats["pool"] = pool
        stats["workers"] = pool["workers"]
        stats["batch_max"] = max(stats["batch_max"], pool["batch_max"])
        fleet = pool.get("fleet", {})
        cache = dict(stats["graph_cache"])
        worker_cache = fleet.get("worker_graph_cache", {})
        cache["worker_hits"] = worker_cache.get("hits", 0)
        cache["worker_misses"] = worker_cache.get("misses", 0)
        stats["graph_cache"] = cache
        stats["worker_requests"] = fleet.get("worker_requests_total", 0)
        # Under the pool, forwards (and so shadow audits) run in the
        # workers: fold their fleet-merged audit counters into the
        # quality view so `samples` reflects the whole process tree.
        quality = dict(stats.get("quality") or {})
        worker_quality = fleet.get("worker_quality", {})
        worker_audits = worker_quality.get("audits", 0)
        if worker_audits or quality.get("enabled"):
            quality.setdefault("enabled", True)
            quality["worker_audits"] = worker_audits
            quality["samples"] = int(quality.get("samples", 0) or 0) \
                + worker_audits
            if quality.get("slack_mae_ps") is None \
                    and worker_quality.get("scored"):
                quality["slack_mae_ps"] = \
                    worker_quality.get("slack_mae_p50_ps")
            stats["quality"] = quality
        return stats

    def healthz(self):
        """Liveness with per-worker detail: ``degraded`` when any worker
        process is down (the monitor is busy restarting it)."""
        health = super().healthz()
        pool = self.router.stats()
        health["workers"] = [
            {"worker": w["worker"], "pid": w["pid"], "alive": w["alive"],
             "restarts": w["restarts"]} for w in pool["per_worker"]]
        if any(not w["alive"] for w in health["workers"]):
            health["status"] = "degraded"
        return health

    def metrics_text(self):
        """Parent exposition plus every worker's series, ``worker``-labeled.

        Worker instrument names (``repro_worker_*``) are disjoint from
        parent families, so concatenating the expositions never emits a
        duplicate ``# TYPE`` line.
        """
        return super().metrics_text() + \
            self.router.fleet.render_prometheus()

    def warm(self, models=(), designs=()):
        """Load + publish models, extract + publish design graphs."""
        super().warm(models=models, designs=designs)
        from ..service import PredictRequest
        for name in models:
            try:
                self.router.ensure_model(self.registry.get(name))
            except NotPoolable:
                pass
        for design in designs:
            request = PredictRequest(design=design).validate()
            graph, key, _hit = self.resolve_graph(request)
            self.router.ensure_graph(key, graph)

    def close(self, drain_s=5.0):
        self.router.close(drain_s=drain_s)
        super().close()
