"""Predictor worker: the process side of the pre-fork serving pool.

One :class:`PoolWorker` runs in each pool process.  It owns *no* model
weights and *no* graph arrays of its own — both are zero-copy read-only
views over shared-memory segments published by the parent
(:mod:`repro.parallel.shm`), so N workers cost one copy of the model
and one copy of every served design, regardless of N.

The worker's main loop is also its micro-batcher: it blocks on its
request queue, gives stragglers ``window_s`` to pile on (up to
``max_batch``), dedupes items that refer to the same graph, and runs
one disjoint-union forward per (model, batch).  Because the parent
router shards requests by graph key, concurrent requests for the same
design always land on the same worker and coalesce.

The loop is transport-agnostic on purpose: it only needs ``get(timeout)``
/ ``put`` queues, so tests drive it in-process with ``queue.Queue`` while
production uses ``multiprocessing`` queues via :func:`worker_main`.

Protocol (tuples; first element is the kind):

* parent -> worker: ``MSG_MODEL``, ``MSG_PREDICT``, ``MSG_DELTA``
  (incremental ECO prediction against a worker-private delta session),
  ``MSG_STOP``, ``MSG_CRASH`` (test hook: hard ``os._exit``);
* worker -> parent: ``R_READY``, ``R_OK``, ``R_ERR``, ``R_EXPIRED``,
  ``R_BATCH`` (per-forward batching stats), ``R_MODEL_ERR``.

Delta sessions are worker-local state (unlike models and graphs they
are mutable, so they cannot live in shared memory): because the router
shards by base graph key, every delta for one design lands on the same
worker and its session stays consistent.  The parent applies each edit
stream to its own session first and sends the post-apply version; a
worker whose session cannot reach that version (fresh fork after a
crash, evicted state) answers ``R_ERR`` and the parent falls back to
its in-process session — correctness never depends on worker state.

Protocol extensions are append-only: ``MSG_PREDICT`` may carry an
optional 8th element ``(trace_id, parent_span_id, sent_ts)`` and
``R_OK`` grows an optional 5th element (the worker-side span records
for that request) — old peers that index only the original slots keep
working.

The worker also owns a private :class:`~repro.obs.MetricsRegistry`
(``repro_worker_*`` instruments, names deliberately disjoint from the
parent's ``repro_pool_*``/``repro_serving_*`` families) and, when given
a ``stats_q``, periodically publishes ``export_state()`` snapshots that
the parent's :class:`~repro.obs.fleet.FleetAggregator` merges under a
``worker`` label.
"""

from __future__ import annotations

import os
import queue
import time

from ...graphdata.hetero import HeteroGraph
from ...obs.metrics import MetricsRegistry
from ...obs.quality import QualityMonitor
from ...obs.tracing import make_span_record
from ...parallel.shm import attach

__all__ = ["PoolWorker", "worker_main",
           "MSG_MODEL", "MSG_PREDICT", "MSG_DELTA", "MSG_STOP",
           "MSG_CRASH",
           "R_READY", "R_OK", "R_ERR", "R_EXPIRED", "R_BATCH",
           "R_MODEL_ERR"]

MSG_MODEL = "model"
MSG_PREDICT = "predict"
MSG_DELTA = "delta"
MSG_STOP = "stop"
MSG_CRASH = "crash"

R_READY = "ready"
R_OK = "ok"
R_ERR = "err"
R_EXPIRED = "expired"
R_BATCH = "batch"
R_MODEL_ERR = "model_err"

# Model classes a worker can rebuild from a pickled spec.  Anything else
# is "not poolable" and the parent serves it in-process instead.
POOLABLE_CLASSES = ("TimingGNN", "NetEmbedding")


def build_model_from_spec(spec):
    """Instantiate the model skeleton a published spec describes."""
    cls = spec.get("cls")
    cfg = spec.get("config")
    if cls == "TimingGNN":
        from ...models import TimingGNN
        return TimingGNN(cfg)
    if cls == "NetEmbedding":
        from ...models import NetEmbedding
        return NetEmbedding(cfg)
    raise ValueError(f"unknown poolable model class {cls!r}")


class _SessionEntry:
    """Registry-entry shim so DeltaSession can key its forward states."""

    __slots__ = ("name", "version", "model", "kind")

    def __init__(self, name, record):
        self.name = name
        self.version = record["version"]
        self.model = record["model"]
        self.kind = record["kind"]


class PoolWorker:
    """Attach shared state, batch requests, answer with payloads."""

    def __init__(self, worker_id, request_q, response_q, heartbeat=None,
                 window_s=0.002, max_batch=16, poll_s=0.1, stats_q=None,
                 stats_interval_s=0.25):
        self.worker_id = int(worker_id)
        self.request_q = request_q
        self.response_q = response_q
        self.heartbeat = heartbeat
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self.poll_s = float(poll_s)
        self.stats_q = stats_q
        self.stats_interval_s = float(stats_interval_s)
        self._last_publish = 0.0
        self._models = {}      # name -> {model, kind, version, attachment}
        self._graphs = {}      # key -> (segment_name, graph, attachment)
        self._sessions = {}    # graph key -> DeltaSession (worker-local)
        self._stopping = False
        self.metrics = MetricsRegistry()
        self._h_request = self.metrics.histogram(
            "repro_worker_request_ms",
            "Worker-side request latency (queue wait through reply).")
        self._h_forward = self.metrics.histogram(
            "repro_worker_forward_ms",
            "Model forward wall time per batch.")
        self._h_batch = self.metrics.histogram(
            "repro_worker_batch_size",
            "Live items per executed (model, batch).")
        self._c_cache_hits = self.metrics.counter(
            "repro_worker_cache_hits_total",
            "Graph attachments served from the worker cache.",
            cache="graph")
        self._c_cache_misses = self.metrics.counter(
            "repro_worker_cache_misses_total",
            "Graph attachments that required a fresh shm attach.",
            cache="graph")
        self._g_graphs = self.metrics.gauge(
            "repro_worker_graphs", "Graphs attached in this worker.")
        self._g_models = self.metrics.gauge(
            "repro_worker_models", "Models attached in this worker.")
        self._g_sessions = self.metrics.gauge(
            "repro_worker_delta_sessions",
            "Live delta (ECO edit) sessions in this worker.")
        # Worker-side shadow-STA auditor: same sampler as the parent's,
        # but its families are repro_worker_quality_* so the snapshots
        # merge through the fleet aggregator without name collisions.
        self.quality = QualityMonitor(registry=self.metrics,
                                      prefix="repro_worker_quality_")

    # -- plumbing ---------------------------------------------------------------
    def _beat(self):
        if self.heartbeat is not None:
            try:
                self.heartbeat[self.worker_id] = time.time()
            except (IndexError, OSError):
                pass

    def _respond(self, message):
        try:
            self.response_q.put(message)
        except (OSError, ValueError):
            # Parent gone / queue closed: nothing left to serve.
            self._stopping = True

    def _count_request(self, outcome):
        self.metrics.counter(
            "repro_worker_requests_total",
            "Requests answered by this worker, by outcome.",
            outcome=outcome).inc()

    def publish_stats(self, force=False):
        """Ship a registry snapshot to the parent's stats queue.

        Rate-limited to one snapshot per ``stats_interval_s`` unless
        ``force`` (shutdown uses force so the final counter totals are
        never lost — see the merged-totals test in tests/test_pool.py).
        """
        if self.stats_q is None:
            return False
        now = time.time()
        if not force and now - self._last_publish < self.stats_interval_s:
            return False
        self._last_publish = now
        try:
            self.stats_q.put((self.worker_id, os.getpid(), now,
                              self.metrics.export_state()))
        except (OSError, ValueError, queue.Full):
            return False
        return True

    # -- the loop ---------------------------------------------------------------
    def serve(self):
        """Run until a stop message arrives (or the parent disappears)."""
        self._respond((R_READY, self.worker_id, os.getpid()))
        try:
            while not self._stopping:
                batch = self._take_batch()
                if batch:
                    self._execute(batch)
        finally:
            self.shutdown()

    def _take_batch(self):
        """One blocking item, then up to ``window_s`` of stragglers.

        Returns ``(message, recv_ts)`` pairs — the receive timestamp
        anchors the queue-wait span and the worker-side latency
        histogram for each item.
        """
        first = None
        while first is None and not self._stopping:
            self._beat()
            self.publish_stats()
            try:
                message = self.request_q.get(timeout=self.poll_s)
            except queue.Empty:
                continue
            except (OSError, EOFError):
                self._stopping = True
                return []
            first = self._handle_control(message)
        if first is None:
            return []
        batch = [(first, time.time())]
        deadline = time.monotonic() + self.window_s
        while len(batch) < self.max_batch and not self._stopping:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                message = self.request_q.get(timeout=remaining)
            except queue.Empty:
                break
            except (OSError, EOFError):
                self._stopping = True
                break
            item = self._handle_control(message)
            if item is not None:
                batch.append((item, time.time()))
        return batch

    def _handle_control(self, message):
        """Process control messages inline; return predict items as-is."""
        kind = message[0]
        if kind in (MSG_PREDICT, MSG_DELTA):
            return message
        if kind == MSG_MODEL:
            self._attach_model(*message[1:])
        elif kind == MSG_STOP:
            self._stopping = True
        elif kind == MSG_CRASH:
            os._exit(13)   # crash-injection test hook: die without cleanup
        return None

    # -- shared-state attachment ------------------------------------------------
    def _attach_model(self, name, version, segment, spec):
        try:
            attachment = attach(segment)
            model = build_model_from_spec(spec)
            params = dict(model.named_parameters())
            if set(params) != set(attachment.arrays):
                raise ValueError(
                    f"model {name!r}: parameter names of the published "
                    f"state do not match the rebuilt skeleton")
            for pname, view in attachment.arrays.items():
                if params[pname].data.shape != view.shape:
                    raise ValueError(f"model {name!r}: shape mismatch "
                                     f"for parameter {pname!r}")
                params[pname].data = view   # zero-copy shared weights
            model.eval()
        except Exception as exc:   # noqa: BLE001 — reported to the parent
            self._respond((R_MODEL_ERR, name,
                           f"{type(exc).__name__}: {exc}"))
            return
        old = self._models.pop(name, None)
        if old is not None:
            old["attachment"].close()
        self._models[name] = {"model": model, "kind": spec["kind"],
                              "version": version,
                              "attachment": attachment}
        self._g_models.set(len(self._models))

    def _graph(self, key, segment):
        cached = self._graphs.get(key)
        if cached is not None:
            if cached[0] == segment:
                self._c_cache_hits.inc()
                return cached[1]
            cached[2].close()   # key re-published under a new segment
        self._c_cache_misses.inc()
        attachment = attach(segment)
        meta = attachment.meta
        graph = HeteroGraph(name=meta["name"], split=meta["split"],
                            clock_period=meta["clock_period"],
                            **attachment.arrays)
        graph.build_levels()
        self._graphs[key] = (segment, graph, attachment)
        self._g_graphs.set(len(self._graphs))
        return graph

    # -- execution --------------------------------------------------------------
    def _execute(self, batch):
        self._beat()
        by_model = {}
        for message, recv_ts in batch:
            if message[0] == MSG_DELTA:
                # Delta requests never coalesce: each one mutates its
                # session, so they run individually in arrival order.
                self._execute_delta(message, recv_ts)
                continue
            by_model.setdefault(message[2], []).append((message, recv_ts))
        for model_name, items in by_model.items():
            self._execute_model(model_name, items)
        self.publish_stats()

    def _item_spans(self, message, recv_ts, exec_ts, attach_ms,
                    forward_ms, batch_size, end_ts):
        """Synthesize the worker-side span tree for one request.

        The batch phases (queue wait, batch window, shm attach, model
        forward) overlap between items of one batch, so they cannot be
        expressed as nested ``with tracer.span()`` blocks — instead each
        item gets hand-built records parented under the router's
        ``pool.submit`` span via the trace context the message carried.
        Returns [] for messages without a trace context (old peers,
        tracing disabled).
        """
        ctx = message[7] if len(message) > 7 else None
        if not ctx:
            return []
        trace_id, parent_span_id, sent_ts = ctx
        sent_ts = float(sent_ts if sent_ts is not None else recv_ts)
        root = make_span_record(
            "worker.predict", trace_id, parent_span_id, sent_ts,
            (end_ts - sent_ts) * 1000.0, worker=self.worker_id,
            model=message[2], graph=message[3], batch_size=batch_size)
        spans = [root]
        phases = [("worker.queue_wait", sent_ts, recv_ts - sent_ts),
                  ("worker.batch_window", recv_ts, exec_ts - recv_ts),
                  ("worker.shm_attach", exec_ts, attach_ms / 1000.0),
                  ("worker.forward", exec_ts + attach_ms / 1000.0,
                   forward_ms / 1000.0)]
        for phase, start, seconds in phases:
            if phase == "worker.shm_attach" and attach_ms <= 0.0:
                continue
            spans.append(make_span_record(
                phase, trace_id, root["span_id"], start,
                seconds * 1000.0, worker=self.worker_id))
        return spans

    def _execute_model(self, name, items):
        # (MSG_PREDICT, req_id, model, key, segment, include_slack,
        #  deadline_ts[, trace_ctx]) — deadline_ts is absolute
        #  time.time() seconds; trace_ctx, when present, is
        #  (trace_id, parent_span_id, sent_ts).
        now = time.time()
        live = []
        for message, recv_ts in items:
            deadline = message[6]
            if deadline is not None and now > deadline:
                self._count_request("expired")
                self._respond((R_EXPIRED, message[1]))
            else:
                live.append((message, recv_ts))
        if not live:
            return
        record = self._models.get(name)
        if record is None:
            for message, _recv_ts in live:
                self._count_request("error")
                self._respond((R_ERR, message[1],
                               f"model {name!r} not published to worker"))
            return
        exec_ts = time.time()
        try:
            graphs, position = [], {}
            t0 = time.perf_counter()
            for message, _recv_ts in live:
                key, segment = message[3], message[4]
                if key not in position:
                    position[key] = len(graphs)
                    graphs.append(self._graph(key, segment))
            attach_ms = (time.perf_counter() - t0) * 1000.0
            t0 = time.perf_counter()
            outputs = record["model"].predict_batch(graphs)
            forward_ms = (time.perf_counter() - t0) * 1000.0
        except Exception as exc:   # noqa: BLE001 — per-item error report
            for message, _recv_ts in live:
                self._count_request("error")
                self._respond((R_ERR, message[1],
                               f"{type(exc).__name__}: {exc}"))
            return
        self._h_forward.observe(forward_ms)
        self._h_batch.observe(len(live))
        self._respond((R_BATCH, self.worker_id, len(live), len(graphs),
                       name))
        for message, recv_ts in live:
            graph = graphs[position[message[3]]]
            payload = self._payload(record["kind"], graph,
                                    outputs[position[message[3]]],
                                    bool(message[5]))
            end_ts = time.time()
            self._count_request("ok")
            self._h_request.observe((end_ts - recv_ts) * 1000.0)
            spans = self._item_spans(message, recv_ts, exec_ts,
                                     attach_ms, forward_ms, len(live),
                                     end_ts)
            self._respond((R_OK, message[1], payload, len(live), spans))
            # Audit after responding: the sampler only copies the
            # arrival array here; scoring runs on its own thread.
            if record["kind"] == "timing":
                self.quality.maybe_audit(
                    graph, outputs[position[message[3]]]["arrival"],
                    model=name, request_id=message[1])

    @staticmethod
    def _payload(kind, graph, output, include_slack):
        from ..service import _netdelay_payload, _timing_payload
        if kind == "timing":
            return _timing_payload(graph, output["arrival"], include_slack)
        return _netdelay_payload(graph, output["net_delay"])

    # -- delta (incremental) execution -------------------------------------------
    def _delta_session(self, key, spec, n_edits):
        """The session for ``key``, iff it can reach ``spec['version']``.

        A fresh session starts at version 0, so it is only usable when
        the parent's target version equals the edit count of this very
        request (i.e. the session's whole history is in flight).  A
        cached session out of sync with the parent (restarted worker,
        a previous failed request) is dropped and the request errors —
        the parent answers from its own session instead.
        """
        from ..delta import DeltaSession
        session = self._sessions.get(key)
        if session is not None and \
                session.version + n_edits == spec["version"]:
            return session
        if session is not None:
            self._sessions.pop(key, None)
            self._g_sessions.set(len(self._sessions))
        if spec["version"] != n_edits:
            have = session.version if session is not None else "none"
            raise ValueError(
                f"delta session for graph {key!r} is out of sync "
                f"(worker at version {have}, parent at "
                f"{spec['version']})")
        session = DeltaSession(spec["design"], spec["seed"],
                               spec["scale"], key)
        self._sessions[key] = session
        self._g_sessions.set(len(self._sessions))
        return session

    def _execute_delta(self, message, recv_ts):
        # (MSG_DELTA, req_id, model, key, spec, edits, include_slack,
        #  deadline_ts[, trace_ctx]) — spec is {design, seed, scale,
        #  version}: the session identity plus the parent's post-apply
        #  version this worker's session must land on.
        from ..service import _netdelay_payload, _timing_payload
        (_kind, req_id, model_name, key, spec, edits, include_slack,
         deadline) = message[:8]
        if deadline is not None and time.time() > deadline:
            self._count_request("expired")
            self._respond((R_EXPIRED, req_id))
            return
        record = self._models.get(model_name)
        if record is None:
            self._count_request("error")
            self._respond((R_ERR, req_id,
                           f"model {model_name!r} not published to "
                           f"worker"))
            return
        try:
            t0 = time.perf_counter()
            session = self._delta_session(key, spec, len(edits))
            attach_ms = (time.perf_counter() - t0) * 1000.0
            entry = _SessionEntry(model_name, record)
            t0 = time.perf_counter()
            with session.lock:
                if edits:
                    session.apply(edits)
                if record["kind"] == "timing":
                    state, stats = session.refresh(entry)
                    dirty = stats["dirty_nodes"]
                    payload = _timing_payload(session.hetero,
                                              state.arrival,
                                              bool(include_slack))
                else:
                    dirty = session.hetero.num_nodes
                    payload = _netdelay_payload(session.hetero,
                                                session.netdelay(entry))
            forward_ms = (time.perf_counter() - t0) * 1000.0
        except Exception as exc:   # noqa: BLE001 — reported to the parent
            self._count_request("error")
            self._respond((R_ERR, req_id,
                           f"{type(exc).__name__}: {exc}"))
            return
        end_ts = time.time()
        self._h_forward.observe(forward_ms)
        self._count_request("ok")
        self._h_request.observe((end_ts - recv_ts) * 1000.0)
        spans = []
        ctx = message[8] if len(message) > 8 else None
        if ctx:
            trace_id, parent_span_id, sent_ts = ctx
            sent_ts = float(sent_ts if sent_ts is not None else recv_ts)
            root = make_span_record(
                "worker.predict_delta", trace_id, parent_span_id,
                sent_ts, (end_ts - sent_ts) * 1000.0,
                worker=self.worker_id, model=model_name, graph=key,
                edits=len(edits), dirty_nodes=int(dirty))
            spans = [root, make_span_record(
                "worker.delta_forward", trace_id, root["span_id"],
                end_ts - forward_ms / 1000.0, forward_ms,
                worker=self.worker_id)]
            if attach_ms > 0.5:   # session rebuild, not a cache lookup
                spans.append(make_span_record(
                    "worker.session_build", trace_id, root["span_id"],
                    end_ts - (attach_ms + forward_ms) / 1000.0,
                    attach_ms, worker=self.worker_id))
        self._respond((R_OK, req_id, payload, 1, spans))

    # -- lifecycle --------------------------------------------------------------
    def shutdown(self):
        """Release every shared-memory attachment (no unlinks)."""
        # Drain in-flight audits first so the forced final snapshot
        # below carries the complete audit counters (fleet merge is
        # asserted lossless post-shutdown in tests/test_quality.py).
        self.quality.close()
        for record in self._models.values():
            record["attachment"].close()
        self._models.clear()
        for _segment, _graph, attachment in self._graphs.values():
            attachment.close()
        self._graphs.clear()
        self._sessions.clear()   # private arrays, nothing shm-backed
        self._g_models.set(0)
        self._g_graphs.set(0)
        self._g_sessions.set(0)
        self.publish_stats(force=True)


def worker_main(worker_id, request_q, response_q, heartbeat, options,
                stats_q=None):
    """Process entry point (must stay module-level for spawn pickling)."""
    import signal

    # The parent coordinates shutdown: a stray terminal Ctrl-C must not
    # kill workers before the router has drained them.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    options = dict(options or {})
    backend = options.get("kernels")
    if backend:
        from ...nn.kernels import set_default_backend
        set_default_backend(backend)
    worker = PoolWorker(worker_id, request_q, response_q,
                        heartbeat=heartbeat,
                        window_s=options.get("window_s", 0.002),
                        max_batch=options.get("max_batch", 16),
                        poll_s=options.get("poll_s", 0.1),
                        stats_q=stats_q,
                        stats_interval_s=options.get("stats_interval_s",
                                                     0.25))
    worker.serve()
