"""Load generator: drive the HTTP serving layer with concurrent clients.

``run_loadgen`` spins up N client threads, each issuing a stream of
``/predict`` calls over localhost (round-robin across a design list),
validates every response (HTTP 200, echoed design name, well-formed
prediction payload), and reports throughput plus client-side latency
percentiles and the server's own ``/stats`` snapshot.  This is the
serving layer's benchmark — ``repro bench-serve`` wraps it and records
each run to ``BENCH_serving.json`` (see :func:`write_bench_json`) so
the throughput/latency trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import asdict, dataclass, field

import numpy as np

__all__ = ["ClientRecord", "LoadgenResult", "run_loadgen",
           "format_loadgen_report", "write_bench_json",
           "BENCH_SCHEMA_VERSION"]

BENCH_SCHEMA_VERSION = 1


@dataclass
class ClientRecord:
    """One client thread's tally."""

    sent: int = 0
    ok: int = 0
    errors: int = 0
    incorrect: int = 0
    degraded: int = 0
    cache_hits: int = 0
    shed: int = 0
    retries: int = 0
    latencies_ms: list = field(default_factory=list)


@dataclass
class LoadgenResult:
    clients: int
    requests: int
    ok: int
    errors: int
    incorrect: int
    degraded: int
    cache_hits: int
    warmup_requests: int
    duration_s: float
    throughput_rps: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    server_stats: dict
    # pool-era fields, defaulted so single-process results stay valid
    shed: int = 0
    retries: int = 0
    workers: int = 0
    batch_max: int = 0

    def to_dict(self):
        out = asdict(self)
        for key, value in out.items():
            if isinstance(value, float):
                out[key] = round(value, 4)
        return out


def _http_json(url, payload=None, timeout=60.0):
    if payload is None:
        req = urllib.request.Request(url)
    else:
        body = json.dumps(payload).encode()
        req = urllib.request.Request(
            url, data=body, headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        # Non-2xx with a JSON body (shed 503s, request errors) is a
        # response, not a transport failure.
        try:
            return exc.code, json.loads(exc.read())
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return exc.code, {}


def _client_loop(url, designs, model, num_requests, deadline_ms, record,
                 start_barrier, timeout, no_cache=False, max_retries=8,
                 backoff_s=0.005):
    start_barrier.wait()
    for i in range(num_requests):
        design = designs[i % len(designs)]
        payload = {"design": design, "model": model}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if no_cache:
            payload["no_cache"] = True
        t0 = time.perf_counter()
        record.sent += 1
        attempt = 0
        while True:
            try:
                status, body = _http_json(url + "/predict", payload,
                                          timeout=timeout)
            except (urllib.error.URLError, OSError, ValueError):
                record.errors += 1
                break
            if status == 503 and isinstance(body, dict) \
                    and body.get("shed"):
                # Backpressure-aware pacing: the server shed us past its
                # admission watermark; back off exponentially and retry
                # instead of hammering the queue.
                record.shed += 1
                if attempt >= max_retries:
                    record.errors += 1
                    break
                time.sleep(min(backoff_s * (2 ** attempt), 0.25))
                attempt += 1
                record.retries += 1
                continue
            record.latencies_ms.append(
                (time.perf_counter() - t0) * 1000.0)
            if status != 200:
                record.errors += 1
                break
            # Correctness: the answer must be for the design we asked
            # about and carry a structurally valid prediction payload.
            prediction = body.get("prediction")
            if (body.get("design") != design
                    or not isinstance(prediction, dict) or not prediction):
                record.incorrect += 1
                break
            record.ok += 1
            if body.get("degraded"):
                record.degraded += 1
            if body.get("cache_hit"):
                record.cache_hits += 1
            break


def run_loadgen(url, designs, clients=8, requests_per_client=8,
                model="timing-full", deadline_ms=None, timeout=120.0,
                warmup_requests=None, no_cache=False, max_retries=8):
    """Drive ``url`` with ``clients`` concurrent request streams.

    Before the timed phase, ``warmup_requests`` untimed ``/predict``
    calls are issued sequentially (default: one per design, round-robin)
    so graph loading, model instantiation and cache population are not
    billed to the measured throughput/latency numbers; pass ``0`` to
    disable.  ``clients`` scales to hundreds of threads (each client is
    one blocking request stream); ``no_cache`` bypasses the server's
    result cache so every request exercises a real model forward — the
    knob that makes micro-batching visible under concurrency.  Shed
    (503) responses are retried up to ``max_retries`` times with
    exponential backoff.  Returns a :class:`LoadgenResult`; raises if
    the server is not reachable at all (``/healthz`` probe).
    """
    url = url.rstrip("/")
    status, _ = _http_json(url + "/healthz", timeout=timeout)
    if status != 200:
        raise RuntimeError(f"server at {url} is not healthy")

    designs = list(designs)
    if warmup_requests is None:
        warmup_requests = len(designs)
    for i in range(warmup_requests):
        payload = {"design": designs[i % len(designs)], "model": model}
        try:
            _http_json(url + "/predict", payload, timeout=timeout)
        except (urllib.error.URLError, OSError, ValueError):
            pass  # warmup is best-effort; the timed phase will report

    records = [ClientRecord() for _ in range(clients)]
    start_barrier = threading.Barrier(clients + 1)
    threads = [
        threading.Thread(
            target=_client_loop,
            args=(url, list(designs), model, requests_per_client,
                  deadline_ms, records[i], start_barrier, timeout,
                  no_cache, max_retries),
            name=f"loadgen-{i}", daemon=True)
        for i in range(clients)]
    for t in threads:
        t.start()
    start_barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    duration = time.perf_counter() - t0

    latencies = np.asarray(
        [l for r in records for l in r.latencies_ms], dtype=float)
    total = sum(r.sent for r in records)
    ok = sum(r.ok for r in records)
    _, server_stats = _http_json(url + "/stats", timeout=timeout)
    return LoadgenResult(
        clients=clients, requests=total, ok=ok,
        errors=sum(r.errors for r in records),
        incorrect=sum(r.incorrect for r in records),
        degraded=sum(r.degraded for r in records),
        cache_hits=sum(r.cache_hits for r in records),
        shed=sum(r.shed for r in records),
        retries=sum(r.retries for r in records),
        warmup_requests=warmup_requests,
        duration_s=duration,
        throughput_rps=(ok / duration) if duration > 0 else 0.0,
        latency_p50_ms=float(np.percentile(latencies, 50))
        if len(latencies) else 0.0,
        latency_p99_ms=float(np.percentile(latencies, 99))
        if len(latencies) else 0.0,
        latency_mean_ms=float(latencies.mean()) if len(latencies) else 0.0,
        workers=int(server_stats.get("workers", 0)),
        batch_max=int(server_stats.get("batch_max", 0)),
        server_stats=server_stats)


def write_bench_json(result, path="BENCH_serving.json", params=None,
                     extra=None):
    """Record one loadgen run as a small JSON benchmark artefact.

    Written by ``repro bench-serve`` at the repo root so the serving
    throughput/latency trajectory is tracked across PRs; ``scripts/
    ci.sh`` asserts the file is produced and well-formed.  ``extra``
    merges additional top-level fields (pooled runs record ``workers``,
    the ``single_process`` reference numbers and ``pool_speedup``).
    """
    from ..bench.diff import bench_fingerprint
    from ..obs.runs import new_run_id, record_run

    payload = {
        "benchmark": "serving",
        "schema_version": BENCH_SCHEMA_VERSION,
        "run_id": new_run_id("bench_serving"),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                      time.gmtime()),
        "params": dict(params or {}),
        **result.to_dict(),
        **dict(extra or {}),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=False)
        fh.write("\n")
    # mirror the artefact into the run ledger so `repro bench diff` can
    # gate future runs against it
    record_run("bench_serving", run_id=payload["run_id"],
               fingerprint=bench_fingerprint(payload),
               generated_at=payload["generated_at"], payload=payload)
    return path


def format_loadgen_report(result):
    """Human-readable throughput/latency table for one loadgen run."""
    stats = result.server_stats
    lines = [
        "serving benchmark",
        f"  clients            {result.clients}",
        f"  requests           {result.requests}"
        f"  (ok {result.ok}, errors {result.errors},"
        f" incorrect {result.incorrect})",
        f"  degraded           {result.degraded}",
        f"  client cache hits  {result.cache_hits}",
        f"  shed / retries     {result.shed} / {result.retries}",
        f"  warmup requests    {result.warmup_requests} (untimed)",
        f"  duration           {result.duration_s:.2f} s",
        f"  throughput         {result.throughput_rps:.1f} req/s",
        f"  latency p50        {result.latency_p50_ms:.1f} ms",
        f"  latency p99        {result.latency_p99_ms:.1f} ms",
        f"  latency mean       {result.latency_mean_ms:.1f} ms",
    ]
    result_cache = stats.get("result_cache", {})
    graph_cache = stats.get("graph_cache", {})
    lines += [
        "server-side",
        f"  workers            {result.workers}"
        f"  (batch max {result.batch_max})",
        f"  result cache       {result_cache.get('hits', 0)} hits /"
        f" {result_cache.get('misses', 0)} misses"
        f" (hit rate {result_cache.get('hit_rate', 0.0):.2f})",
        f"  graph cache        {graph_cache.get('hits', 0)} hits /"
        f" {graph_cache.get('misses', 0)} misses",
    ]
    for name, b in (stats.get("batching") or {}).items():
        lines.append(
            f"  batcher[{name}]    {b['batches']} batches,"
            f" mean {b['mean_batch']:.2f}, max {b['max_batch']}")
    pool = stats.get("pool")
    if pool:
        lines.append(
            f"  pool               shm {pool['shm_bytes'] / 1e6:.1f} MB in"
            f" {pool['shm_segments']} segments,"
            f" restarts {pool['restarts']}, shed {pool['shed']}")
        for w in pool.get("per_worker", []):
            lines.append(
                f"  worker[{w['worker']}]          {w['completed']} done,"
                f" {w['batches']} batches, mean {w['mean_batch']:.2f},"
                f" max {w['batch_max']}, restarts {w['restarts']},"
                f" p50 {w.get('latency_p50_ms', 0.0):.1f} ms,"
                f" p99 {w.get('latency_p99_ms', 0.0):.1f} ms")
        fleet = pool.get("fleet") or {}
        if fleet.get("worker_requests_total"):
            latency = fleet.get("latency_ms", {})
            lines.append(
                f"  fleet              {fleet['worker_requests_total']} "
                f"worker requests, p50 {latency.get('p50', 0.0):.1f} ms, "
                f"p99 {latency.get('p99', 0.0):.1f} ms")
    return "\n".join(lines)
