"""Stdlib JSON/HTTP front-end for :class:`PredictionService`.

Endpoints:

* ``POST /predict`` — body is a :class:`PredictRequest` JSON object;
* ``POST /predict/delta`` — a :class:`DeltaRequest`: base design plus
  an ECO edit list; answered incrementally from the live delta session;
* ``GET /models``   — the registry catalogue (loaded state, versions);
* ``GET /healthz``  — liveness (per-worker detail + SLO under the pool);
* ``GET /stats``    — counts, cache hit rates, p50/p99 latency, batching;
* ``GET /metrics``  — the same facts in Prometheus text exposition
  format (scrape target), straight from the service's metrics registry.

Every ``/predict`` is the root of a distributed trace: the handler
mints a ``trace_id`` (or adopts a caller-supplied ``X-Trace-Id``
header), opens the ``http.predict`` root span under it, and returns the
id in both the JSON body and the ``X-Trace-Id`` response header — with
the pool, worker-side span records stitch under the same id so ``repro
trace`` renders the full queue-wait → attach → forward timeline.

Built on ``http.server.ThreadingHTTPServer`` so each connection is
handled on its own thread — concurrency and batching come from the
service core, not the transport.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..obs import get_logger, get_tracer, mint_trace_id
from .service import Overloaded, PredictionService, RequestError

_log = get_logger("repro.serving.http")

__all__ = ["make_server", "ServingServer"]

_MAX_BODY_BYTES = 16 * 1024 * 1024
_TRACE_ID_RE = re.compile(r"^[0-9a-f]{8,32}$")


def _request_trace_id(headers):
    """Adopt a well-formed caller trace id, else mint a fresh one."""
    supplied = (headers.get("X-Trace-Id") or "").strip().lower()
    if _TRACE_ID_RE.match(supplied):
        return supplied
    return mint_trace_id()


def _make_handler(service, quiet=True):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, fmt, *args):
            if not quiet:
                BaseHTTPRequestHandler.log_message(self, fmt, *args)

        def _send_json(self, status, payload, headers=None):
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _send_text(self, status, text, content_type):
            body = text.encode()
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):
            path = self.path.split("?", 1)[0]
            if path == "/metrics":
                self._send_text(
                    200, service.metrics_text(),
                    "text/plain; version=0.0.4; charset=utf-8")
                return
            routes = {"/healthz": service.healthz,
                      "/stats": service.stats,
                      "/models": service.models}
            handler = routes.get(path)
            if handler is None:
                self._send_json(404, {"error": f"no route {self.path}"})
                return
            self._send_json(200, handler())

        def do_POST(self):
            path = self.path.split("?", 1)[0]
            routes = {"/predict": ("http.predict", service.predict),
                      "/predict/delta": ("http.predict_delta",
                                         service.predict_delta)}
            route = routes.get(path)
            if route is None:
                self._send_json(404, {"error": f"no route {self.path}"})
                return
            span_name, endpoint = route
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                self._send_json(400, {"error": "bad Content-Length"})
                return
            if length <= 0 or length > _MAX_BODY_BYTES:
                self._send_json(400, {"error": "missing or oversized body"})
                return
            try:
                payload = json.loads(self.rfile.read(length))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                self._send_json(400, {"error": f"invalid JSON: {exc}"})
                return
            trace_id = _request_trace_id(self.headers)
            headers = {"X-Trace-Id": trace_id}
            try:
                # Root span of the distributed trace: serve.predict,
                # pool.submit and the worker-side records all nest under
                # this trace_id.
                with get_tracer().span(span_name,
                                       trace_id=trace_id) as sp:
                    sp.set(path=path)
                    response = endpoint(payload)
            except Overloaded as exc:
                # Load shed; tell clients to back off (loadgen's pacing
                # keys off the flag).
                self._send_json(exc.status, {"error": str(exc),
                                             "shed": True,
                                             "trace_id": trace_id},
                                headers=headers)
                return
            except RequestError as exc:
                self._send_json(exc.status, {"error": str(exc),
                                             "trace_id": trace_id},
                                headers=headers)
                return
            except Exception as exc:   # noqa: BLE001 — last-resort 500
                _log.error("internal_error", path=self.path,
                           error=str(exc))
                self._send_json(500, {"error": f"internal error: {exc}",
                                      "trace_id": trace_id},
                                headers=headers)
                return
            body = response.to_dict()
            body["trace_id"] = trace_id
            self._send_json(200, body, headers=headers)

    return Handler


def make_server(service, host="127.0.0.1", port=8080, quiet=True):
    """A ready-to-run ``ThreadingHTTPServer`` bound to ``host:port``.

    ``port=0`` picks a free ephemeral port (see ``server_address``).
    """
    # The stdlib default accept backlog (request_queue_size=5) drops
    # connections with ECONNRESET when hundreds of loadgen clients
    # burst-connect; listen deeper so admission control — not the
    # kernel's SYN queue — decides who gets shed.
    server_cls = type("_Server", (ThreadingHTTPServer,),
                      {"request_queue_size": 256})
    server = server_cls((host, port), _make_handler(service, quiet=quiet))
    server.daemon_threads = True
    return server


class ServingServer:
    """Owns a service + HTTP server pair; start/stop for embedding.

    Used by ``repro bench-serve``, the load-generator tests, and any
    caller that wants a warm server inside the current process.
    """

    def __init__(self, service=None, host="127.0.0.1", port=0, quiet=True):
        self.service = service or PredictionService()
        self._server = make_server(self.service, host=host, port=port,
                                   quiet=quiet)
        self._thread = None

    @property
    def address(self):
        host, port = self._server.server_address[:2]
        return host, port

    @property
    def url(self):
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self):
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-serving-http",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self):
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.service.close()

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False
