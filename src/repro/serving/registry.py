"""Named, versioned registry of warm prediction models.

The registry maps stable public names ("timing-full", "net-embedding",
...) to loader functions that materialize a trained model exactly once
(from the on-disk ``.npz`` state cache — which honors
``REPRO_CACHE_DIR`` — training it first if no checkpoint exists) and
then keep it warm in memory for the lifetime of the service.

Loading is thread-safe and per-entry: two concurrent first requests for
the same model block on one load; requests for different models load
concurrently.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field

__all__ = ["ModelEntry", "ModelRegistry", "ModelLoadError",
           "DEFAULT_MODELS", "TIMING_VARIANTS"]

TIMING_VARIANTS = ("full", "cell", "net", "none")

# name -> (kind, variant); the registry's default catalogue.
DEFAULT_MODELS = {
    **{f"timing-{v}": ("timing", v) for v in TIMING_VARIANTS},
    "net-embedding": ("netdelay", None),
}


class ModelLoadError(RuntimeError):
    """A registry entry failed to load (bad checkpoint, training error)."""


@dataclass
class ModelEntry:
    """One warm model plus its serving metadata."""

    name: str
    kind: str                       # "timing" (TimingGNN) | "netdelay"
    version: str
    model: object
    loaded_at: float
    load_seconds: float
    extra: dict = field(default_factory=dict)
    # Train-time FeatureProfile for drift auditing (repro.obs.quality);
    # a first-class field, not `extra`, so describe() stays JSON-clean.
    profile: object = None

    def describe(self):
        return {"name": self.name, "kind": self.kind,
                "version": self.version,
                "loaded_at": self.loaded_at,
                "load_seconds": round(self.load_seconds, 3),
                "drift_profile": self.profile is not None,
                **self.extra}


def _version_tag(*parts):
    payload = "|".join(str(p) for p in parts)
    return "v" + hashlib.sha256(payload.encode()).hexdigest()[:10]


class ModelRegistry:
    """Lazy, thread-safe catalogue of named model loaders."""

    def __init__(self, scale=None, epochs=None, names=None):
        """``scale``/``epochs`` parameterize the default loaders
        (defaulting to ``REPRO_SCALE``/``REPRO_EPOCHS``); ``names``
        restricts the catalogue to a subset of :data:`DEFAULT_MODELS`.
        """
        self._scale = scale
        self._epochs = epochs
        self._loaders = {}
        self._entries = {}
        self._lock = threading.Lock()
        self._entry_locks = {}
        catalogue = DEFAULT_MODELS if names is None else {
            n: DEFAULT_MODELS[n] for n in names}
        for name, (kind, variant) in catalogue.items():
            self._loaders[name] = self._default_loader(name, kind, variant)

    # -- catalogue management ---------------------------------------------------
    def register(self, name, loader):
        """Add/replace a loader: ``loader() -> ModelEntry``.

        Used by tests and by deployments that serve bespoke checkpoints.
        """
        with self._lock:
            self._loaders[name] = loader
            self._entries.pop(name, None)

    def names(self):
        with self._lock:
            return sorted(self._loaders)

    def loaded_names(self):
        with self._lock:
            return sorted(self._entries)

    def _default_loader(self, name, kind, variant):
        def load():
            from ..experiments.common import (experiment_epochs,
                                              experiment_scale,
                                              trained_net_embedding,
                                              trained_timing_gnn)
            from ..graphdata.dataset import DATASET_VERSION
            scale = (experiment_scale() if self._scale is None
                     else self._scale)
            epochs = (experiment_epochs() if self._epochs is None
                      else self._epochs)
            if kind == "timing":
                model = trained_timing_gnn(variant, scale=scale,
                                           epochs=self._epochs)
                extra = {"variant": variant}
            else:
                model = trained_net_embedding(scale=scale,
                                              epochs=self._epochs)
                extra = {}
            version = _version_tag(kind, variant, scale, epochs,
                                   DATASET_VERSION)
            return ModelEntry(name=name, kind=kind, version=version,
                              model=model, loaded_at=time.time(),
                              load_seconds=0.0, extra=extra,
                              profile=getattr(model, "feature_profile",
                                              None))
        return load

    # -- lookup -----------------------------------------------------------------
    def get(self, name):
        """The warm :class:`ModelEntry` for ``name`` (loading on first use).

        Raises ``KeyError`` for unknown names and :class:`ModelLoadError`
        when the loader fails.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is not None:
                return entry
            if name not in self._loaders:
                raise KeyError(name)
            entry_lock = self._entry_locks.get(name)
            if entry_lock is None:
                entry_lock = self._entry_locks[name] = threading.Lock()
            loader = self._loaders[name]
        with entry_lock:
            with self._lock:
                entry = self._entries.get(name)
                if entry is not None:
                    return entry
            t0 = time.perf_counter()
            try:
                entry = loader()
            except Exception as exc:
                raise ModelLoadError(
                    f"loading model {name!r} failed: {exc}") from exc
            entry.load_seconds = time.perf_counter() - t0
            with self._lock:
                self._entries[name] = entry
            return entry

    def describe(self):
        """Metadata for every catalogue entry (loaded or not)."""
        with self._lock:
            names = sorted(self._loaders)
            entries = dict(self._entries)
        out = []
        for name in names:
            if name in entries:
                out.append({**entries[name].describe(), "loaded": True})
            else:
                out.append({"name": name, "loaded": False})
        return out
