"""Synthetic gate-level circuit generator.

The paper's benchmarks are real RTL designs synthesised with the OpenROAD
flow.  Without synthesis tools or the RTL here, this module generates
random-but-structured DAG circuits whose *statistics* (fanout
distribution, logic depth, register fraction, cell mix) are controlled by
a per-family :class:`CircuitStyle`, so e.g. the AES-family benchmarks are
wide and XOR-heavy while the USB-family ones are deep, control-dominated
and register-rich.

Generation happens in topological order, so circuits are acyclic by
construction (validated in :mod:`repro.netlist.validate`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .design import Design

__all__ = ["CircuitStyle", "generate_circuit", "STYLES"]


@dataclass(frozen=True)
class CircuitStyle:
    """Knobs shaping the generated circuit's structure."""

    name: str
    seq_fraction: float = 0.10      # fraction of cells that are registers
    pi_fraction: float = 0.04       # primary inputs per cell
    po_fraction: float = 0.03       # primary outputs per cell
    locality: float = 0.75          # prob. of picking a recent driver (depth)
    depth_target: int = 40          # approximate combinational depth
    max_fanout: int = 12
    arity_weights: tuple = (0.25, 0.55, 0.20)   # 1-, 2-, 3-input cells
    xor_bias: float = 1.0           # weight multiplier on XOR/XNOR
    mux_bias: float = 1.0           # weight multiplier on MUX/AOI/OAI
    buffer_bias: float = 1.0        # weight multiplier on INV/BUF sizes



STYLES = {
    # Wide, XOR-heavy rounds of moderate depth: AES / DES / salsa20 / xtea.
    "cipher": CircuitStyle("cipher", seq_fraction=0.10, pi_fraction=0.05,
                           po_fraction=0.04, locality=0.60, depth_target=35,
                           arity_weights=(0.18, 0.62, 0.20), xor_bias=4.0,
                           mux_bias=0.8),
    # Register-rich, shallow control logic: USB cores, SPI controllers.
    "control": CircuitStyle("control", seq_fraction=0.22, pi_fraction=0.05,
                            po_fraction=0.04, locality=0.85, depth_target=14,
                            arity_weights=(0.30, 0.50, 0.20), xor_bias=0.5,
                            mux_bias=1.5),
    # Deep mux-heavy datapath + control: CPU cores.
    "cpu": CircuitStyle("cpu", seq_fraction=0.15, pi_fraction=0.03,
                        po_fraction=0.03, locality=0.88, depth_target=60,
                        arity_weights=(0.22, 0.48, 0.30), xor_bias=0.8,
                        mux_bias=2.5),
    # Multiply-accumulate chains: FIR filters, encoders.
    "datapath": CircuitStyle("datapath", seq_fraction=0.14, pi_fraction=0.04,
                             po_fraction=0.05, locality=0.80, depth_target=30,
                             arity_weights=(0.20, 0.55, 0.25), xor_bias=2.0,
                             mux_bias=1.2),
    # Wide shallow mux trees: RAM wrappers, huffman tables.
    "memory": CircuitStyle("memory", seq_fraction=0.18, pi_fraction=0.06,
                           po_fraction=0.06, locality=0.45, depth_target=8,
                           arity_weights=(0.18, 0.42, 0.40), xor_bias=0.4,
                           mux_bias=3.5),
}


def _cell_menu(library, style):
    """Return, per arity, (cell names, selection weights)."""
    menus = {}
    bias = {
        "XOR2_X1": style.xor_bias, "XNOR2_X1": style.xor_bias,
        "MUX2_X1": style.mux_bias, "AOI21_X1": style.mux_bias,
        "OAI21_X1": style.mux_bias,
        "INV_X1": style.buffer_bias, "BUF_X1": style.buffer_bias,
    }
    for arity in (1, 2, 3):
        cells = [c for c in library.cells_with_inputs(arity)
                 if c.use_in_synthesis]
        names = [c.name for c in cells]
        weights = np.asarray([bias.get(n, 1.0) for n in names])
        menus[arity] = (names, weights / weights.sum())
    return menus


class _DriverPool:
    """Net drivers organised by logic stage, with fanout budgets.

    Cells are generated stage by stage; a cell at stage ``s`` may only
    consume drivers from stages < s, which bounds the combinational depth
    at the number of stages by construction.  ``locality`` biases input
    selection toward the immediately preceding stage (long carry/round
    chains) versus any earlier stage (wide fanin cones).
    """

    def __init__(self, rng, style):
        self.rng = rng
        self.style = style
        self.pins = []
        self.fanout = []
        self.stage_members = [[]]    # stage -> list of pool indices

    def add(self, pin, stage):
        while stage >= len(self.stage_members):
            self.stage_members.append([])
        self.pins.append(pin)
        self.fanout.append(0)
        self.stage_members[stage].append(len(self.pins) - 1)

    def _candidate_pool(self, stage):
        if self.rng.random() < self.style.locality:
            # Nearest non-empty earlier stage.
            for s in range(min(stage, len(self.stage_members)) - 1, -1, -1):
                if self.stage_members[s]:
                    return self.stage_members[s]
        earlier = [i for s in range(min(stage, len(self.stage_members)))
                   for i in self.stage_members[s]]
        return earlier

    def pick(self, stage, exclude=()):
        """Pick a driver visible from ``stage``, preferring spare fanout."""
        pool = self._candidate_pool(stage)
        for _ in range(16):
            i = pool[int(self.rng.integers(0, len(pool)))]
            if self.fanout[i] < self.style.max_fanout and \
                    self.pins[i].index not in exclude:
                self.fanout[i] += 1
                return self.pins[i]
        # Fall back to scanning every earlier stage for spare budget.
        earlier = [i for s in range(min(stage, len(self.stage_members)))
                   for i in self.stage_members[s]]
        order = self.rng.permutation(len(earlier))
        for j in order:
            i = earlier[j]
            if self.fanout[i] < self.style.max_fanout and \
                    self.pins[i].index not in exclude:
                self.fanout[i] += 1
                return self.pins[i]
        # Everything saturated: overload the least-loaded visible driver.
        i = min(earlier, key=lambda k: self.fanout[k])
        self.fanout[i] += 1
        return self.pins[i]

    def unused(self):
        return [p for p, f in zip(self.pins, self.fanout) if f == 0]

    def index_of(self, pin):
        return self.pins.index(pin)


def generate_circuit(name, target_nodes, style, library, seed):
    """Generate a design with roughly ``target_nodes`` timing-graph nodes."""
    if isinstance(style, str):
        style = STYLES[style]
    rng = np.random.default_rng(seed)
    design = Design(name, library)
    menus = _cell_menu(library, style)
    arities = np.asarray([1, 2, 3])
    arity_p = np.asarray(style.arity_weights, dtype=np.float64)
    arity_p /= arity_p.sum()
    avg_arity = float((arities * arity_p).sum())

    # -- budget planning ------------------------------------------------------
    # Node cost: comb cell = arity + 1 pins; register = 2 graph pins (D, Q);
    # each port = 1 pin.  Solve for the cell count that hits target_nodes.
    per_comb = avg_arity + 1.0
    per_seq = 2.0
    seq_frac = style.seq_fraction
    port_frac = style.pi_fraction + style.po_fraction
    denom = (1 - seq_frac) * per_comb + seq_frac * per_seq + port_frac
    n_cells = max(12, int(round(target_nodes / denom)))
    n_seq = max(2, int(round(n_cells * seq_frac)))
    n_pi = max(4, int(round(n_cells * style.pi_fraction)))
    n_po = max(2, int(round(n_cells * style.po_fraction)))

    # -- ports and registers -----------------------------------------------------
    design.add_port("clk", "input", is_clock=True)
    pis = [design.add_port(f"in{i}", "input") for i in range(n_pi)]
    pool = _DriverPool(rng, style)
    for pin in pis:
        pool.add(pin, stage=0)

    seq_types = [c.name for c in library.sequential_cells]
    dffs = []
    for i in range(n_seq):
        cell_name = seq_types[int(rng.integers(0, len(seq_types)))]
        inst = design.add_cell(f"r{i}", library[cell_name])
        dffs.append(inst)
        pool.add(inst.pins["Q"], stage=0)

    # -- combinational fabric -----------------------------------------------------
    node_budget = target_nodes - n_pi - n_po - n_seq * 2
    n_comb_est = max(1, int(node_budget / per_comb))
    n_stages = max(2, min(style.depth_target, n_comb_est))
    cells_per_stage = max(1, int(np.ceil(n_comb_est / n_stages)))
    used = 0
    gate_index = 0
    while used + 2 <= node_budget:
        stage = 1 + gate_index // cells_per_stage
        arity = int(rng.choice(arities, p=arity_p))
        arity = min(arity, max(1, int(node_budget - used - 1)))
        names, weights = menus[arity]
        cell_name = str(rng.choice(names, p=weights))
        inst = design.add_cell(f"g{gate_index}", library[cell_name])
        gate_index += 1
        chosen = set()
        for pin_name in inst.cell_type.input_pins:
            driver = pool.pick(stage, exclude=chosen)
            chosen.add(driver.index)
            _attach(design, driver, inst.pins[pin_name])
        pool.add(inst.pins["Y"], stage=stage)
        used += arity + 1

    # -- close the sequential loop and the outputs --------------------------------
    # Register D inputs and primary outputs tap preferentially into unused
    # drivers so few nets dangle.
    sinks_needed = [dff.pins["D"] for dff in dffs]
    pos = [design.add_port(f"out{i}", "output") for i in range(n_po)]
    sinks_needed.extend(pos)
    unused = pool.unused()
    rng.shuffle(unused)
    final_stage = len(pool.stage_members)
    for sink in sinks_needed:
        if unused:
            driver = unused.pop()
            pool.fanout[pool.index_of(driver)] += 1
        else:
            driver = pool.pick(final_stage)
        _attach(design, driver, sink)
    # Any remaining dangling drivers become extra observation outputs, as a
    # synthesis flow would otherwise sweep the logic away.
    for extra, driver in enumerate(pool.unused()):
        po = design.add_port(f"obs{extra}", "output")
        _attach(design, driver, po)

    design.clock_period = library.clock_period_guess
    return design


def _attach(design, driver, sink):
    """Connect ``sink`` to the net driven by ``driver`` (creating the net)."""
    if driver.net is None:
        design.add_net(f"n_{driver.index}", driver)
    design.connect(driver.net, sink)
