"""The 21-benchmark suite of the paper's Table 1, regenerated synthetically.

Each entry records the paper's original statistics (for the Table 1
comparison) and the parameters of our scaled synthetic stand-in
(~1/50 of the original node count, with a per-family circuit style).
The train/test split matches the paper: the first 14 benchmarks train,
the last 7 test.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from .generator import generate_circuit

__all__ = ["BenchmarkSpec", "BENCHMARKS", "TRAIN_BENCHMARKS",
           "TEST_BENCHMARKS", "build_benchmark", "benchmark_names"]

SCALE = 50  # paper nodes / our nodes
MIN_NODES = 150


@dataclass(frozen=True)
class BenchmarkSpec:
    name: str
    split: str                   # "train" or "test"
    style: str                   # key into generator.STYLES
    paper_nodes: int
    paper_net_edges: int
    paper_cell_edges: int
    paper_endpoints: int

    @property
    def target_nodes(self):
        return max(MIN_NODES, round(self.paper_nodes / SCALE))

    @property
    def seed(self):
        """Stable per-design seed derived from the benchmark name."""
        return zlib.crc32(self.name.encode()) & 0x7FFFFFFF


# Paper Table 1, in the paper's row order (14 train + 7 test).
BENCHMARKS = [
    BenchmarkSpec("blabla", "train", "datapath", 55568, 39853, 35689, 1614),
    BenchmarkSpec("usb_cdc_core", "train", "control", 7406, 5200, 4869, 630),
    BenchmarkSpec("BM64", "train", "datapath", 38458, 27843, 25334, 1800),
    BenchmarkSpec("salsa20", "train", "cipher", 78486, 57737, 52895, 3710),
    BenchmarkSpec("aes128", "train", "cipher", 211045, 148997, 138457, 5696),
    BenchmarkSpec("wbqspiflash", "train", "control", 9672, 6798, 6454, 323),
    BenchmarkSpec("cic_decimator", "train", "control", 3131, 2232, 2102, 130),
    BenchmarkSpec("aes256", "train", "cipher", 290955, 207414, 189262, 11200),
    BenchmarkSpec("des", "train", "cipher", 60541, 44478, 41845, 2048),
    BenchmarkSpec("aes_cipher", "train", "cipher", 59777, 42671, 41411, 660),
    BenchmarkSpec("picorv32a", "train", "cpu", 58676, 43047, 40208, 1920),
    BenchmarkSpec("zipdiv", "train", "control", 4398, 3102, 2913, 181),
    BenchmarkSpec("genericfir", "train", "datapath", 38827, 28845, 25013, 3811),
    BenchmarkSpec("usb", "train", "control", 3361, 2406, 2189, 344),
    BenchmarkSpec("jpeg_encoder", "test", "datapath", 238216, 176737, 167960, 4422),
    BenchmarkSpec("usbf_device", "test", "control", 66345, 46241, 42226, 4404),
    BenchmarkSpec("aes192", "test", "cipher", 234211, 165350, 152910, 8096),
    BenchmarkSpec("xtea", "test", "cipher", 10213, 7151, 6882, 423),
    BenchmarkSpec("spm", "test", "datapath", 1121, 765, 700, 129),
    BenchmarkSpec("y_huff", "test", "memory", 48216, 33689, 30612, 2391),
    BenchmarkSpec("synth_ram", "test", "memory", 25910, 19024, 16782, 2112),
]

TRAIN_BENCHMARKS = [b for b in BENCHMARKS if b.split == "train"]
TEST_BENCHMARKS = [b for b in BENCHMARKS if b.split == "test"]

_BY_NAME = {b.name: b for b in BENCHMARKS}


def benchmark_names(split=None):
    """Names of the benchmark designs, optionally filtered by split."""
    return [b.name for b in BENCHMARKS if split is None or b.split == split]


def build_benchmark(name, library, scale=1.0):
    """Generate the synthetic stand-in for a named benchmark.

    ``scale`` further multiplies the target node count (used by fast test
    configurations; 1.0 reproduces the default suite).
    """
    spec = _BY_NAME[name]
    target = max(MIN_NODES, int(round(spec.target_nodes * scale)))
    return generate_circuit(spec.name, target, spec.style, library, spec.seed)
