"""Gate-level netlists: data model, synthetic generator, benchmark suite."""

from .design import Pin, CellInst, Net, Design
from .generator import CircuitStyle, generate_circuit, STYLES
from .benchmarks import (BenchmarkSpec, BENCHMARKS, TRAIN_BENCHMARKS,
                         TEST_BENCHMARKS, build_benchmark, benchmark_names)
from .validate import NetlistError, validate_design, combinational_depth
from .verilog import write_verilog, parse_verilog, VerilogError

__all__ = [
    "Pin", "CellInst", "Net", "Design",
    "CircuitStyle", "generate_circuit", "STYLES",
    "BenchmarkSpec", "BENCHMARKS", "TRAIN_BENCHMARKS", "TEST_BENCHMARKS",
    "build_benchmark", "benchmark_names",
    "NetlistError", "validate_design", "combinational_depth",
    "write_verilog", "parse_verilog", "VerilogError",
]
