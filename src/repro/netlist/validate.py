"""Structural validation of netlists.

Run after generation and before the physical flow; raises
:class:`NetlistError` with a precise message on the first violation.
"""

from __future__ import annotations

from collections import deque

__all__ = ["NetlistError", "validate_design", "combinational_depth"]


class NetlistError(ValueError):
    """A structural netlist violation."""


def validate_design(design):
    """Check connectivity, direction and acyclicity invariants."""
    for net in design.nets:
        if net.driver is None:
            raise NetlistError(f"net {net.name} has no driver")
        if not net.driver.is_net_driver:
            raise NetlistError(f"net {net.name} driven by sink pin "
                               f"{net.driver.name}")
        for sink in net.sinks:
            if sink.is_net_driver:
                raise NetlistError(f"net {net.name} has driver pin "
                                   f"{sink.name} as a sink")
            if sink.net is not net:
                raise NetlistError(f"pin {sink.name} net back-pointer broken")
    for cell in design.cells:
        for name, pin in cell.pins.items():
            if pin.is_clock:
                continue
            if pin.net is None:
                raise NetlistError(f"pin {pin.name} is unconnected")
    seen = set()
    for pin in design.pins:
        if pin.index in seen:
            raise NetlistError(f"duplicate pin index {pin.index}")
        seen.add(pin.index)
        if design.pins[pin.index] is not pin:
            raise NetlistError(f"pin index {pin.index} out of place")
    if combinational_depth(design) < 0:
        raise NetlistError("combinational loop detected")
    return True


def _forward_adjacency(design):
    """Pin-level successor lists over net edges + combinational cell arcs."""
    succ = [[] for _ in design.pins]
    indeg = [0] * len(design.pins)
    for net in design.nets:
        for sink in net.sinks:
            succ[net.driver.index].append(sink.index)
            indeg[sink.index] += 1
    for cell in design.combinational_cells:
        for arc in cell.cell_type.arcs:
            src = cell.pins[arc.input_pin].index
            dst = cell.pins[arc.output_pin].index
            succ[src].append(dst)
            indeg[dst] += 1
    return succ, indeg


def combinational_depth(design):
    """Longest path length in the pin DAG, or -1 if the graph has a cycle."""
    succ, indeg = _forward_adjacency(design)
    level = [0] * len(design.pins)
    queue = deque(i for i, d in enumerate(indeg) if d == 0)
    visited = 0
    depth = 0
    while queue:
        node = queue.popleft()
        visited += 1
        for nxt in succ[node]:
            level[nxt] = max(level[nxt], level[node] + 1)
            depth = max(depth, level[nxt])
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                queue.append(nxt)
    reachable = sum(1 for d in indeg if d >= 0)
    if visited != reachable:
        return -1
    return depth
