"""Gate-level netlist data model.

A :class:`Design` is a set of cell instances connected by nets.  Every pin
has a dense integer id so downstream stages (placement, routing, STA,
graph extraction) can operate on flat numpy arrays.

Clocking follows a pre-CTS model (as in the paper's pre-routing setting):
flip-flop clock pins receive an ideal clock and are not part of the
routed net graph, so register Q pins act as timing sources and register D
pins as timing endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Pin", "CellInst", "Net", "Design"]


@dataclass(eq=False)
class Pin:
    """A pin in the flat design: either a cell pin or a top-level port."""

    index: int
    name: str                     # e.g. "u42/A" or "port:clk"
    direction: str                # "input" or "output" (of the *cell*)
    cell: "CellInst" = None       # None for top-level ports
    lib_pin: str = ""             # library pin name ("A", "Y", "D", ...)
    is_port: bool = False
    is_clock: bool = False
    net: "Net" = None

    @property
    def is_net_driver(self):
        """True if this pin drives a net (cell output or input port)."""
        if self.is_port:
            return self.direction == "input"
        return self.direction == "output"

    @property
    def is_primary_input(self):
        return self.is_port and self.direction == "input"

    @property
    def is_primary_output(self):
        return self.is_port and self.direction == "output"


@dataclass(eq=False)
class CellInst:
    """An instance of a library cell."""

    name: str
    cell_type: object             # liberty.CellType
    pins: dict = field(default_factory=dict)   # lib pin name -> Pin

    @property
    def is_sequential(self):
        return self.cell_type.is_sequential


@dataclass(eq=False)
class Net:
    """A net: exactly one driver pin and zero or more sink pins."""

    name: str
    driver: Pin = None
    sinks: list = field(default_factory=list)

    @property
    def pins(self):
        return ([self.driver] if self.driver else []) + self.sinks

    @property
    def degree(self):
        return len(self.sinks) + (1 if self.driver else 0)


class Design:
    """A flat gate-level design bound to a liberty library."""

    def __init__(self, name, library):
        self.name = name
        self.library = library
        self.cells = []            # list[CellInst]
        self.nets = []             # list[Net]
        self.pins = []             # list[Pin], index == position
        self.ports = []            # list[Pin] (top-level, includes clock)
        self.clock_period = library.clock_period_guess

    # -- construction -------------------------------------------------------
    def _new_pin(self, name, direction, cell=None, lib_pin="",
                 is_port=False, is_clock=False):
        pin = Pin(index=len(self.pins), name=name, direction=direction,
                  cell=cell, lib_pin=lib_pin, is_port=is_port,
                  is_clock=is_clock)
        self.pins.append(pin)
        return pin

    def add_port(self, name, direction, is_clock=False):
        pin = self._new_pin(f"port:{name}", direction, is_port=True,
                            is_clock=is_clock)
        self.ports.append(pin)
        return pin

    def add_cell(self, name, cell_type):
        inst = CellInst(name=name, cell_type=cell_type)
        for spec in cell_type.pins.values():
            pin = self._new_pin(f"{name}/{spec.name}", spec.direction,
                                cell=inst, lib_pin=spec.name,
                                is_clock=spec.is_clock)
            inst.pins[spec.name] = pin
        self.cells.append(inst)
        return inst

    def add_net(self, name, driver, sinks=()):
        net = Net(name=name, driver=driver, sinks=list(sinks))
        driver.net = net
        for sink in net.sinks:
            sink.net = net
        self.nets.append(net)
        return net

    def connect(self, net, sink):
        net.sinks.append(sink)
        sink.net = net

    # -- queries --------------------------------------------------------------
    @property
    def num_pins(self):
        return len(self.pins)

    @property
    def primary_inputs(self):
        return [p for p in self.ports
                if p.direction == "input" and not p.is_clock]

    @property
    def primary_outputs(self):
        return [p for p in self.ports if p.direction == "output"]

    @property
    def sequential_cells(self):
        return [c for c in self.cells if c.is_sequential]

    @property
    def combinational_cells(self):
        return [c for c in self.cells if not c.is_sequential]

    def endpoints(self):
        """Timing endpoints: register D pins and primary outputs."""
        eps = []
        for cell in self.sequential_cells:
            for name in cell.cell_type.input_pins:
                eps.append(cell.pins[name])
        eps.extend(self.primary_outputs)
        return eps

    def startpoints(self):
        """Timing sources: primary inputs and register Q pins."""
        sps = list(self.primary_inputs)
        for cell in self.sequential_cells:
            for name in cell.cell_type.output_pins:
                sps.append(cell.pins[name])
        return sps

    def pin_capacitance(self, pin):
        """Liberty pin capacitance 4-vector (zeros for outputs and ports)."""
        import numpy as np
        if pin.cell is not None and pin.direction == "input":
            return pin.cell.cell_type.pin_capacitance(pin.lib_pin)
        return np.zeros(4)

    def stats(self):
        """Structural statistics matching the columns of the paper's Table 1."""
        net_edges = sum(len(n.sinks) for n in self.nets)
        # Clock pins are ideal (pre-CTS), so CK->Q launch arcs are not part
        # of the extracted timing graph; count combinational arcs only.
        cell_edges = sum(len(c.cell_type.arcs)
                         for c in self.combinational_cells)
        # Only pins that participate in the timing graph count as nodes:
        # clock pins are ideal (pre-CTS) and excluded.
        nodes = sum(1 for p in self.pins if not p.is_clock)
        return {
            "name": self.name,
            "nodes": nodes,
            "net_edges": net_edges,
            "cell_edges": cell_edges,
            "endpoints": len(self.endpoints()),
        }
